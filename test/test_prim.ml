(* Unit tests for the execution substrate: padding, RNG, backoff, barrier,
   striped counters — including the risky parts (Obj-based padding and
   yielding from plain domains). *)

module P = Sec_prim.Native
module Backoff = Sec_prim.Backoff.Make (P)
module Barrier = Sec_prim.Barrier.Make (P)
module Counter = Sec_prim.Striped_counter.Make (P)
module Rng = Sec_prim.Rng

let test_padding_atomic () =
  let a = P.Atomic.make_padded 41 in
  Alcotest.(check int) "get after make_padded" 41 (P.Atomic.get a);
  P.Atomic.set a 42;
  Alcotest.(check int) "set/get" 42 (P.Atomic.get a);
  Alcotest.(check int) "fetch_and_add returns old" 42 (P.Atomic.fetch_and_add a 8);
  Alcotest.(check int) "fetch_and_add adds" 50 (P.Atomic.get a);
  Alcotest.(check bool) "cas succeeds" true (P.Atomic.compare_and_set a 50 7);
  Alcotest.(check bool) "cas fails" false (P.Atomic.compare_and_set a 50 9);
  Alcotest.(check int) "exchange" 7 (P.Atomic.exchange a 3);
  Alcotest.(check int) "after exchange" 3 (P.Atomic.get a)

let test_padding_block () =
  (* Padded copies of records must behave like the original. *)
  let r = Sec_prim.Padding.copy_as_padded (ref 5) in
  incr r;
  Alcotest.(check int) "padded ref" 6 !r;
  (* Immediates pass through unchanged. *)
  Alcotest.(check int) "padded int" 9 (Sec_prim.Padding.copy_as_padded 9);
  (* Strings (no-scan tag) must be returned unchanged, not copied. *)
  let s = "hello" in
  Alcotest.(check bool) "no-scan passthrough" true
    (s == Sec_prim.Padding.copy_as_padded s)

(* The exact copy/passthrough decision tree of [copy_as_padded]: only
   small scannable blocks are copied; everything the copy loop could not
   handle faithfully must come back physically unchanged. *)

(* [mutable] forces a real heap record; all-float fields give it
   [Double_array_tag]. *)
type float_record = { mutable fx : float; fy : float }

let _touch r = r.fx <- 0.
type small_record = { sa : int; mutable sb : string }

let test_padding_float_record_passthrough () =
  (* All-float records get [Double_array_tag] (>= no_scan_tag): copying
     them field-by-field with [Obj.set_field] would be unsound, so they
     must pass through unchanged. *)
  let r = { fx = 1.5; fy = 2.5 } in
  Alcotest.(check bool) "float record is not copied" true
    (r == Sec_prim.Padding.copy_as_padded r);
  Alcotest.(check (float 0.)) "fields intact" 4.0 (r.fx +. r.fy);
  let fa = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "float array is not copied" true
    (fa == Sec_prim.Padding.copy_as_padded fa)

let test_padding_object_passthrough () =
  let o =
    object
      val mutable n = 0
      method bump = n <- n + 1
      method n = n
    end
  in
  Alcotest.(check bool) "objects are not copied" true
    (o == Sec_prim.Padding.copy_as_padded o);
  o#bump;
  Alcotest.(check int) "object still works" 1 o#n

let test_padding_large_block_passthrough () =
  (* Blocks already at or beyond the pad size are left alone. *)
  let big = Array.init 20 (fun i -> string_of_int i) in
  Alcotest.(check bool) "large block is not copied" true
    (big == Sec_prim.Padding.copy_as_padded big);
  let at_boundary = Array.make 16 "x" in
  Alcotest.(check bool) "exactly padded_words is not copied" true
    (at_boundary == Sec_prim.Padding.copy_as_padded at_boundary)

let test_padding_small_block_copied () =
  let r = { sa = 7; sb = "orig" } in
  let p = Sec_prim.Padding.copy_as_padded r in
  Alcotest.(check bool) "a fresh block" true (p != r);
  Alcotest.(check int) "field 0 preserved" 7 p.sa;
  Alcotest.(check string) "field 1 preserved" "orig" p.sb;
  Alcotest.(check int) "padded to padded_words"
    Sec_prim.Padding.padded_words
    (Obj.size (Obj.repr p));
  Alcotest.(check int) "tag preserved" (Obj.tag (Obj.repr r))
    (Obj.tag (Obj.repr p));
  (* The copy is independent of the original. *)
  p.sb <- "copy";
  Alcotest.(check string) "original unaffected" "orig" r.sb

let test_padding_gc_safety () =
  (* Padded blocks survive compaction/minor collections: allocate many,
     force GC, check contents. *)
  let cells = Array.init 1000 (fun i -> P.Atomic.make_padded i) in
  Gc.full_major ();
  Gc.compact ();
  Array.iteri
    (fun i a -> Alcotest.(check int) "cell survives GC" i (P.Atomic.get a))
    cells

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.next_int64 a)
      (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 99L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  Alcotest.(check int) "bound 1 is always 0" 0 (Rng.int r 1)

let test_rng_uniformity () =
  (* Coarse chi-square-ish check: all 10 buckets within 20% of expected. *)
  let r = Rng.create 2024L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d skewed: %d" i c)
    buckets

let test_rng_split_independent () =
  let a = Rng.create 5L in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_backoff_growth () =
  let b = Backoff.create ~min_wait:2 ~max_wait:16 () in
  (* Just exercise it: growth is internal, but it must terminate fast. *)
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b

let test_spin_until () =
  let flag = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        P.relax 1000;
        Atomic.set flag true)
  in
  Backoff.spin_until (fun () -> Atomic.get flag);
  Domain.join d;
  Alcotest.(check bool) "flag set" true (Atomic.get flag)

let test_yield_from_domain () =
  (* Thread.yield must be callable from a freshly spawned domain that never
     created threads itself; spin loops rely on this on 1-core hosts. *)
  let d = Domain.spawn (fun () -> P.yield (); 17) in
  Alcotest.(check int) "yield in domain" 17 (Domain.join d)

let test_barrier_phases () =
  let n = 4 in
  let bar = Barrier.create n in
  let log = Array.make n 0 in
  let phase = Atomic.make 0 in
  let body i () =
    for p = 1 to 5 do
      Barrier.wait bar;
      (* Everyone observes the same phase value inside a phase. *)
      if i = 0 then Atomic.set phase p;
      Barrier.wait bar;
      if Atomic.get phase = p then log.(i) <- log.(i) + 1
    done
  in
  let ds = List.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "thread %d phases" i) 5 c)
    log

let test_striped_counter_sequential () =
  let c = Counter.create ~stripes:4 () in
  for tid = 0 to 9 do
    Counter.add c ~tid 3
  done;
  Alcotest.(check int) "sum" 30 (Counter.get c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c)

let test_striped_counter_parallel () =
  let c = Counter.create () in
  let per_thread = 10_000 and n = 4 in
  let body tid () =
    for _ = 1 to per_thread do
      Counter.incr c ~tid
    done
  in
  let ds = List.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates" (n * per_thread) (Counter.get c)

let test_now_ns_monotonicish () =
  let a = P.now_ns () in
  P.relax 100;
  let b = P.now_ns () in
  Alcotest.(check bool) "clock does not go backwards" true (Int64.compare b a >= 0)

let qcheck_rng_int_in_bounds =
  QCheck.Test.make ~name:"rng: int always in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      0 <= v && v < bound)

let qcheck_padding_roundtrip =
  QCheck.Test.make ~name:"padding: atomic round-trips any int" ~count:500
    QCheck.int
    (fun v -> P.Atomic.get (P.Atomic.make_padded v) = v)

let () =
  Alcotest.run "prim"
    [
      ( "padding",
        [
          Alcotest.test_case "padded atomic ops" `Quick test_padding_atomic;
          Alcotest.test_case "padded blocks" `Quick test_padding_block;
          Alcotest.test_case "float blocks pass through" `Quick
            test_padding_float_record_passthrough;
          Alcotest.test_case "objects pass through" `Quick
            test_padding_object_passthrough;
          Alcotest.test_case "large blocks pass through" `Quick
            test_padding_large_block_passthrough;
          Alcotest.test_case "small blocks copied" `Quick
            test_padding_small_block_copied;
          Alcotest.test_case "gc safety" `Quick test_padding_gc_safety;
          QCheck_alcotest.to_alcotest qcheck_padding_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest qcheck_rng_int_in_bounds;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "growth & reset" `Quick test_backoff_growth;
          Alcotest.test_case "spin_until sees flag" `Quick test_spin_until;
          Alcotest.test_case "yield from domain" `Quick test_yield_from_domain;
        ] );
      ( "barrier",
        [ Alcotest.test_case "multi-phase" `Quick test_barrier_phases ] );
      ( "striped counter",
        [
          Alcotest.test_case "sequential" `Quick test_striped_counter_sequential;
          Alcotest.test_case "parallel no lost updates" `Quick
            test_striped_counter_parallel;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic-ish" `Quick test_now_ns_monotonicish ] );
    ]
