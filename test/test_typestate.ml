(* Tests for the path-sensitive typestate analysis
   (lib/analysis/typestate): the CFG guard-balance rule and its
   facts-export (rule 11), the loop classifier and static progress
   verdicts (rule 12), the protocol automata (rule 13), the three-way
   progress agreement (declaration = dynamic classifier = static
   verdict) over every registry entry, seeded protocol mutants for the
   three shipped automata, and the monotonicity property of the facts
   pipeline over the lint fixtures. *)

module L = Sec_lint_rules.Lint_rules
module Summary = Sec_summary.Summary
module Ts = Sec_typestate.Typestate
module Explore = Sec_sim.Explore
module Sim = Sec_sim.Sim
module SP = Sim.Prim
module Registry = Sec_harness.Registry

let scope = { L.check_discipline = true; L.allow_obj = false }

let rec gather path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc e -> gather (Filename.concat path e) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let resolve candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.failf "none of %s exists" (String.concat ", " candidates)

(* One shared analysis of the library, built on first use. *)
let lib =
  lazy
    (let dir = resolve [ "../lib"; "lib" ] in
     let files = gather dir [] in
     let env = Summary.analyze files in
     (dir, env, Ts.analyze ~summary:env files))

(* Analyse in-memory sources with the discipline scope forced on,
   returning the typestate result plus everything needed to compose
   facts. *)
let analyze_pairs pairs =
  let env = Summary.analyze_sources ~scope pairs in
  (env, Ts.analyze_sources ~summary:env ~scope pairs)

let analyze_src src = analyze_pairs [ ("fix.ml", src) ]

let rules ts = List.map (fun (d : L.diagnostic) -> d.rule) (Ts.diagnostics ts)

(* -------------------------------------------------------------------- *)
(* Rule 11: guard balance *)

let test_guard_exception_leak () =
  let _, ts =
    analyze_src
      {|
module A = Atomic
module E = Ebr.Make (Prim)
type 'a node = { value : 'a }
type 'a t = { top : 'a node option A.t; ebr : E.t }
let peek_exn t ~tid =
  E.enter t.ebr ~tid;
  let v = match A.get t.top with
    | None -> raise Not_found
    | Some n -> n.value
  in
  E.exit t.ebr ~tid;
  v
|}
  in
  Alcotest.(check (list string))
    "the raise path leaks the pinned epoch" [ "guard-balance" ] (rules ts)

let test_guard_match_exception_balanced () =
  let _, ts =
    analyze_src
      {|
module A = Atomic
module E = Ebr.Make (Prim)
type 'a node = { value : 'a }
type 'a t = { top : 'a node option A.t; ebr : E.t }
let peek t ~tid =
  E.enter t.ebr ~tid;
  match A.get t.top with
  | Some n -> let v = n.value in E.exit t.ebr ~tid; Some v
  | None -> E.exit t.ebr ~tid; None
  | exception exn -> E.exit t.ebr ~tid; raise exn
|}
  in
  Alcotest.(check (list string))
    "exit on value, empty and exception paths balances" [] (rules ts)

let test_guard_exit_at_zero () =
  let _, ts =
    analyze_src
      {|
module E = Ebr.Make (Prim)
type t = { ebr : E.t }
let oops t ~tid =
  E.enter t.ebr ~tid;
  E.exit t.ebr ~tid;
  E.exit t.ebr ~tid
|}
  in
  Alcotest.(check (list string))
    "second exit unpins an unpinned epoch" [ "guard-balance" ] (rules ts)

let test_guard_branch_disagreement () =
  let _, ts =
    analyze_src
      {|
module E = Ebr.Make (Prim)
type t = { ebr : E.t }
let maybe t ~tid cond =
  E.enter t.ebr ~tid;
  if cond then E.exit t.ebr ~tid
|}
  in
  Alcotest.(check (list string))
    "branches disagree on the depth at return" [ "guard-balance" ]
    (rules ts)

(* The facts-export: a node-field read between enter and exit is proved
   guarded, so composing the typestate facts discharges the rule-4
   diagnostic the syntactic lint reports. *)
let test_guard_facts_discharge_rule4 () =
  let src =
    {|
module A = Atomic
module E = Ebr.Make (Prim)
type 'a node = { value : 'a }
type 'a t = { top : 'a node option A.t; ebr : E.t }
let peek t ~tid =
  E.enter t.ebr ~tid;
  let v = match A.get t.top with None -> None | Some n -> Some n.value in
  E.exit t.ebr ~tid;
  v
|}
  in
  let env, ts = analyze_src src in
  Alcotest.(check bool)
    "the read is in the definitely-guarded set" true
    (Ts.guarded_positions ts ~file:"fix.ml" <> []);
  let syntactic = L.check_string ~scope ~filename:"fix.ml" src in
  Alcotest.(check (list string))
    "syntactic lint demands a guard"
    [ "ebr-guard" ]
    (List.map (fun (d : L.diagnostic) -> d.rule) syntactic);
  let facts =
    Ts.facts_with ts ~file:"fix.ml" (Summary.facts_for env ~file:"fix.ml")
  in
  Alcotest.(check (list string))
    "typestate facts discharge it" []
    (List.map
       (fun (d : L.diagnostic) -> d.rule)
       (L.check_string ~scope ~facts ~filename:"fix.ml" src))

(* -------------------------------------------------------------------- *)
(* Rule 12: loop classification and verdicts *)

let class_of ts name =
  match
    List.find_opt
      (fun (_, n, _, _, _) -> n = name)
      (Ts.loops ts ~file:"fix.ml")
  with
  | Some (_, _, _, c, _) -> Ts.loop_class_to_string c
  | None -> Alcotest.failf "loop %s not classified" name

let test_loop_classes () =
  let _, ts =
    analyze_src
      {|
[@@@progress "blocking"]
module A = Atomic
type t = { flag : bool A.t; n : int A.t }
let sum t k =
  let s = ref 0 in
  for i = 0 to k do s := !s + i done;
  !s
let bump t =
  let rec attempt () =
    let cur = A.get t.n in
    if not (A.compare_and_set t.n cur (cur + 1)) then attempt ()
  in
  attempt ()
let wait t = while not (A.get t.flag) do () done
let wait_certified t =
  (while not (A.get t.flag) do () done)
  [@await_ok "test: the flag is set before this runs"]
|}
  in
  (match Ts.loops ts ~file:"fix.ml" with
  | [] -> Alcotest.fail "no loops classified"
  | _ -> ());
  Alcotest.(check string) "for-loop is bounded" "bounded" (class_of ts "for@7");
  Alcotest.(check string)
    "CAS loop is cas-retry" "cas_retry" (class_of ts "attempt");
  Alcotest.(check string)
    "read-only wait is stuck" "stuck_spin" (class_of ts "while@15");
  Alcotest.(check string)
    "await_ok moves the wait to bounded" "bounded" (class_of ts "while@17");
  Alcotest.(check (option string))
    "a stuck wait makes the file blocking" (Some "blocking")
    (Option.map Ts.verdict_to_string (Ts.verdict_of ts ~file:"fix.ml"));
  Alcotest.(check (list string))
    "declaration agrees: no diagnostic" [] (rules ts)

let test_verdict_contradiction () =
  let _, ts =
    analyze_src
      {|
[@@@progress "lock_free"]
module A = Atomic
type t = { flag : bool A.t }
let wait t = while not (A.get t.flag) do () done
|}
  in
  Alcotest.(check (list string))
    "declared lock_free over a stuck spin" [ "loop-progress" ] (rules ts)

let test_blocking_needs_witness () =
  let _, ts =
    analyze_src
      {|
[@@@progress "blocking"]
module A = Atomic
type t = { n : int A.t }
let bump t =
  let rec attempt () =
    let cur = A.get t.n in
    if not (A.compare_and_set t.n cur (cur + 1)) then attempt ()
  in
  attempt ()
|}
  in
  Alcotest.(check (list string))
    "declared blocking with no reachable stuck wait" [ "loop-progress" ]
    (rules ts)

(* Cross-file reachability: the stuck wait lives in a helper module; the
   caller's top-level operation reaches it through the resolved call
   graph, so the *caller's* file is blocking. *)
let test_cross_file_stuck_reachability () =
  let _, ts =
    analyze_pairs
      [
        ( "helper.ml",
          {|
module A = Atomic
type t = { flag : bool A.t }
let await t = while not (A.get t.flag) do () done
|}
        );
        ( "caller.ml",
          {|
[@@@progress "lock_free"]
module A = Atomic
let push t v = Helper.await t; ignore v
|}
        );
      ]
  in
  Alcotest.(check (option string))
    "the caller is blocking via the helper" (Some "blocking")
    (Option.map Ts.verdict_to_string (Ts.verdict_of ts ~file:"caller.ml"));
  Alcotest.(check bool)
    "and its lock_free declaration is diagnosed" true
    (List.exists
       (fun (d : L.diagnostic) ->
         d.file = "caller.ml" && d.rule = "loop-progress")
       (Ts.diagnostics ts))

(* -------------------------------------------------------------------- *)
(* Rule 13: protocol automata *)

let test_protocol_violation_and_conformance () =
  let proto =
    {|
[@@@protocol "hand: idle -read:head-> seen; seen -read:head-> seen; seen -rmw:head-> idle"]
module A = Atomic
type 'a t = { head : 'a list A.t }
|}
  in
  let _, bad =
    analyze_src
      (proto
     ^ {|
let push t v =
  let cur = [] in
  if A.compare_and_set t.head cur (v :: cur) then ()
|}
      )
  in
  Alcotest.(check (list string))
    "CAS with no fresh read violates" [ "protocol" ] (rules bad);
  let _, good =
    analyze_src
      (proto
     ^ {|
let push t v =
  let rec attempt () =
    let cur = A.get t.head in
    if not (A.compare_and_set t.head cur (v :: cur)) then attempt ()
  in
  attempt ()
|}
      )
  in
  Alcotest.(check (list string)) "read-then-CAS conforms" [] (rules good)

let test_protocol_malformed_payload () =
  let _, ts =
    analyze_src
      {|
[@@@protocol "no transitions here"]
module A = Atomic
|}
  in
  Alcotest.(check (list string))
    "malformed payload is a protocol diagnostic" [ "protocol" ] (rules ts)

(* The three shipped automata: the library itself lints clean (the
   @lint alias and test_lint pin that), and each automaton catches its
   seeded protocol-violating mutant. Mutants are the real sources with
   one access reordered or a fresh read replaced by a stale value; the
   test fails if the source drifts so the pattern no longer matches. *)

let replace ~what ~with_ s =
  let lw = String.length what in
  let ls = String.length s in
  let rec find i =
    if i + lw > ls then
      Alcotest.failf "mutant pattern no longer matches the source: %S" what
    else if String.sub s i lw = what then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ with_ ^ String.sub s (i + lw) (ls - i - lw)

let analyze_mutant ~path ~what ~with_ =
  let dir, _, _ = Lazy.force lib in
  let file = Filename.concat dir path in
  let src = L.read_file file in
  let pairs = [ (file, replace ~what ~with_ src) ] in
  let env = Summary.analyze_sources pairs in
  Ts.analyze_sources ~summary:env pairs

let protocol_diags ts =
  List.filter (fun (d : L.diagnostic) -> d.rule = "protocol")
    (Ts.diagnostics ts)

let test_shipped_automata_present () =
  let dir, _, ts = Lazy.force lib in
  let check path name =
    Alcotest.(check (list string))
      (path ^ " declares " ^ name) [ name ]
      (Ts.automata_of ts ~file:(Filename.concat dir path))
  in
  check "core/sec_stack.ml" "batch";
  check "reclaim/magazine.ml" "depot";
  check "reclaim/ebr.ml" "epoch";
  Alcotest.(check (list string))
    "the unmutated library has no rule 11-13 diagnostics" []
    (List.map L.diagnostic_to_string (Ts.diagnostics ts))

let test_sec_stack_freeze_order_mutant () =
  let ts =
    analyze_mutant ~path:"core/sec_stack.ml"
      ~what:
        "A.set batch.pop_at_freeze pops;\n    A.set batch.push_at_freeze pushes;"
      ~with_:
        "A.set batch.push_at_freeze pushes;\n    A.set batch.pop_at_freeze pops;"
  in
  Alcotest.(check bool)
    "swapping the freeze snapshot order violates 'batch'" true
    (List.exists
       (fun (d : L.diagnostic) ->
         d.message <> ""
         && String.length d.message >= 17
         && String.sub d.message 0 17 = "automaton 'batch'")
       (protocol_diags ts))

let test_magazine_stale_cas_mutant () =
  let ts =
    analyze_mutant ~path:"reclaim/magazine.ml"
      ~what:
        "let cur = A.get t.depot in\n\
        \      Global.note_depot_cas tid;\n\
        \      if A.compare_and_set t.depot cur (chain :: cur) then ()"
      ~with_:
        "let cur = [] in\n\
        \      Global.note_depot_cas tid;\n\
        \      if A.compare_and_set t.depot cur (chain :: cur) then ()"
  in
  Alcotest.(check bool)
    "CASing the depot against a stale head violates 'depot'" true
    (protocol_diags ts <> [])

let test_ebr_unscanned_advance_mutant () =
  let ts =
    analyze_mutant ~path:"reclaim/ebr.ml"
      ~what:
        "Array.iter\n\
        \      (fun slot ->\n\
        \        let a = A.get slot.announce in\n\
        \        if a <> quiescent && a <> e then blocked := true)\n\
        \      t.slots;"
      ~with_:"ignore t.slots;"
  in
  Alcotest.(check bool)
    "advancing without scanning the announcements violates 'epoch'" true
    (protocol_diags ts <> [])

(* -------------------------------------------------------------------- *)
(* Three-way progress agreement over the registry *)

let file_of_entry name =
  let prefixed p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  if prefixed "SEC-POOL" then "core/sec_pool.ml"
  else if prefixed "SEC" then "core/sec_stack.ml"
  else
    match name with
    | "TRB-EBR" -> "reclaim/treiber_ebr.ml"
    | "TRB" -> "stacks/treiber.ml"
    | "EB" -> "stacks/eb_stack.ml"
    | "FC" -> "stacks/fc_stack.ml"
    | "CC" -> "stacks/cc_stack.ml"
    | "TSI-EBR" -> "reclaim/ts_stack_ebr.ml"
    | "TSI" -> "stacks/ts_stack.ml"
    | "LCK" -> "stacks/lock_stack.ml"
    | "HS" -> "stacks/h_stack.ml"
    | n -> Alcotest.failf "no source mapping for registry entry %s" n

(* Leg 1 (static): for every registry entry, the [@@@progress]
   declaration in its source file and the typestate verdict computed
   from the CFGs must both equal the registry's declared class. The
   dynamic leg is Explore.classify: test_progress.ml runs it for the
   paper set + lock + hsynch, [test_dynamic_rest] below for the rest —
   together the three verdicts agree for every entry. *)
let test_three_way_static () =
  let dir, _, ts = Lazy.force lib in
  List.iter
    (fun (entry : Registry.entry) ->
      let file = Filename.concat dir (file_of_entry entry.Registry.name) in
      let declared_registry =
        Explore.progress_class_to_string entry.Registry.progress
      in
      (match Ts.declared_progress ts ~file with
      | Some d ->
          Alcotest.(check string)
            (entry.Registry.name ^ ": [@@@progress] = registry")
            declared_registry d
      | None ->
          Alcotest.failf "%s: %s declares no [@@@progress]"
            entry.Registry.name file);
      match Ts.verdict_of ts ~file with
      | Some v ->
          Alcotest.(check string)
            (entry.Registry.name ^ ": static verdict = registry")
            declared_registry (Ts.verdict_to_string v)
      | None ->
          Alcotest.failf "%s: no static verdict for %s" entry.Registry.name
            file)
    Registry.refine_set

(* Leg 2 (dynamic) for the entries test_progress.ml does not cover:
   the reclaimed and recycling/adaptive variants and the pool. *)
let stack_scenario ?(tids = [| 0; 1 |]) (module M : Registry.MAKER) () =
  let module St = M (SP) in
  let s = St.create ~max_threads:8 () in
  let fiber tid () =
    St.push s ~tid tid;
    ignore (St.pop s ~tid)
  in
  (Array.to_list (Array.map fiber tids), fun () -> true)

let test_dynamic_rest (entry : Registry.entry) () =
  let tids =
    (* SEC variants block only same-shard: route both fibers onto
       aggregator 0 (the pool and the adaptive variant consolidate to
       one shard anyway). *)
    let n = entry.Registry.name in
    if String.length n >= 3 && String.sub n 0 3 = "SEC" then Some [| 0; 2 |]
    else None
  in
  let c = Explore.classify ~fibers:2 (stack_scenario ?tids entry.Registry.maker) in
  Alcotest.(check string)
    (Printf.sprintf "%s classifies as declared (%d suspension runs)"
       entry.Registry.name c.Explore.runs)
    (Explore.progress_class_to_string entry.Registry.progress)
    (Explore.progress_class_to_string c.Explore.verdict)

(* -------------------------------------------------------------------- *)
(* Monotonicity: composed facts only ever discharge rule 1-9
   obligations — over every lint fixture, the facts-composed run
   reports a subset of the syntactic-only run. *)

let test_facts_monotone_over_fixtures () =
  let dir = resolve [ "lint_fixtures"; "test/lint_fixtures" ] in
  let files = List.sort compare (gather dir []) in
  Alcotest.(check bool) "fixtures found" true (files <> []);
  let env = Summary.analyze ~scope files in
  let ts = Ts.analyze ~summary:env ~scope files in
  List.iter
    (fun file ->
      let key (d : L.diagnostic) = (d.line, d.col, d.rule) in
      let syntactic = List.map key (L.check_file ~scope file) in
      let facts =
        Ts.facts_with ts ~file (Summary.facts_for env ~file)
      in
      List.iter
        (fun (d : L.diagnostic) ->
          if not (List.mem (key d) syntactic) then
            Alcotest.failf
              "%s: facts added a diagnostic the syntactic run lacked: %s"
              file (L.diagnostic_to_string d))
        (L.check_file ~scope ~facts file))
    files

(* -------------------------------------------------------------------- *)
(* Introspection sanity *)

let test_cfg_stats () =
  let dir, _, ts = Lazy.force lib in
  let units, nodes, heads =
    Ts.cfg_stats ts ~file:(Filename.concat dir "core/sec_stack.ml")
  in
  Alcotest.(check bool) "sec_stack has analysed units" true (units > 5);
  Alcotest.(check bool) "CFGs have nodes" true (nodes > units);
  Alcotest.(check bool) "and loop heads" true (heads > 0)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "typestate"
    [
      ( "guard-balance",
        [
          quick "exception path leaks" test_guard_exception_leak;
          quick "match-exception balances" test_guard_match_exception_balanced;
          quick "exit at depth zero" test_guard_exit_at_zero;
          quick "branch disagreement" test_guard_branch_disagreement;
          quick "facts discharge rule 4" test_guard_facts_discharge_rule4;
        ] );
      ( "loop-progress",
        [
          quick "loop classes" test_loop_classes;
          quick "lock_free over stuck spin" test_verdict_contradiction;
          quick "blocking needs a witness" test_blocking_needs_witness;
          quick "cross-file reachability" test_cross_file_stuck_reachability;
        ] );
      ( "protocol",
        [
          quick "violation and conformance"
            test_protocol_violation_and_conformance;
          quick "malformed payload" test_protocol_malformed_payload;
          quick "shipped automata present" test_shipped_automata_present;
          quick "sec_stack freeze-order mutant"
            test_sec_stack_freeze_order_mutant;
          quick "magazine stale-CAS mutant" test_magazine_stale_cas_mutant;
          quick "ebr unscanned-advance mutant"
            test_ebr_unscanned_advance_mutant;
        ] );
      ( "three-way",
        quick "static = declared = registry, all entries"
          test_three_way_static
        :: List.map
             (fun (entry : Registry.entry) ->
               slow
                 (Printf.sprintf "dynamic: %s is %s" entry.Registry.name
                    (Explore.progress_class_to_string entry.Registry.progress))
                 (test_dynamic_rest entry))
             (Registry.reclaimed_set
             @ [ Registry.sec_recycling; Registry.sec_adaptive; Registry.pool ])
      );
      ( "facts",
        [ quick "monotone over fixtures" test_facts_monotone_over_fixtures ] );
      ("introspection", [ quick "cfg stats" test_cfg_stats ]);
    ]
