(* Tests for the progress layer's dynamic prong: the watermark monitor
   (starvation / suspected livelock over one schedule), the suspension
   adversary in both simulators, and the mechanical lock-freedom
   classifier — whose verdict must agree with each registry entry's
   declared progress class. *)

module Explore = Sec_sim.Explore
module Sim = Sec_sim.Sim
module Topology = Sec_sim.Topology
module SP = Sim.Prim
module PM = Sec_analysis.Progress_monitor
module Registry = Sec_harness.Registry

(* ------------------------------------------------------------------ *)
(* Watermark monitor, fed by hand                                       *)

let kinds m = List.map (fun r -> r.PM.kind) (PM.reports m)

let test_monitor_flags_starvation () =
  let m = PM.create ~starvation_ops:3 () in
  PM.on_op_start m ~fiber:1;
  for _ = 1 to 3 do
    PM.on_op_start m ~fiber:0;
    PM.on_op_end m ~fiber:0
  done;
  (match PM.reports m with
  | [ r ] ->
      Alcotest.(check string) "kind" "starvation" (PM.kind_to_string r.PM.kind);
      Alcotest.(check int) "starved fiber" 1 r.PM.fiber;
      Alcotest.(check bool) "peer completions at the bound" true
        (r.PM.peer_completions >= 3)
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
  (* Throttled: the same stalled operation is reported once. *)
  PM.on_op_start m ~fiber:0;
  PM.on_op_end m ~fiber:0;
  Alcotest.(check int) "one report per operation" 1
    (List.length (PM.reports m));
  (* A fresh operation resets the watermark and can be reported again. *)
  PM.on_op_end m ~fiber:1;
  PM.on_op_start m ~fiber:1;
  for _ = 1 to 3 do
    PM.on_op_start m ~fiber:0;
    PM.on_op_end m ~fiber:0
  done;
  Alcotest.(check int) "second stalled op reported" 2
    (List.length (PM.reports m))

let test_monitor_completing_fibers_not_starved () =
  let m = PM.create ~starvation_ops:3 () in
  for _ = 1 to 20 do
    PM.on_op_start m ~fiber:0;
    PM.on_op_end m ~fiber:0;
    PM.on_op_start m ~fiber:1;
    PM.on_op_end m ~fiber:1
  done;
  Alcotest.(check int) "both fibers make progress: no reports" 0
    (List.length (PM.reports m))

let test_monitor_flags_livelock () =
  let m = PM.create ~livelock_events:10 () in
  PM.on_op_start m ~fiber:0;
  for _ = 1 to 15 do
    PM.on_event m ~fiber:0
  done;
  Alcotest.(check (list bool)) "one livelock report, throttled"
    [ true ]
    (List.map (fun k -> k = PM.Livelock_suspected) (kinds m));
  (* A completion ends the dry stretch; the next one reports afresh. *)
  PM.on_op_end m ~fiber:0;
  PM.on_op_start m ~fiber:0;
  for _ = 1 to 15 do
    PM.on_event m ~fiber:0
  done;
  Alcotest.(check int) "second dry stretch reported" 2
    (List.length (PM.reports m))

let test_monitor_idle_events_not_livelock () =
  (* Events with no operation in flight (warmup, draining) are not a
     livelock no matter how many there are. *)
  let m = PM.create ~livelock_events:10 () in
  for _ = 1 to 100 do
    PM.on_event m ~fiber:0
  done;
  Alcotest.(check int) "no in-flight op: no reports" 0
    (List.length (PM.reports m))

let test_monitor_fiber_exit_clears_in_flight () =
  let m = PM.create ~livelock_events:10 () in
  PM.on_op_start m ~fiber:0;
  PM.on_fiber_exit m ~fiber:0;
  for _ = 1 to 100 do
    PM.on_event m ~fiber:1
  done;
  Alcotest.(check int) "exited fiber no longer in flight" 0
    (List.length (PM.reports m))

let test_note_statics_and_installation () =
  (* With no monitor installed the statics are no-ops. *)
  PM.note_op_start ~fiber:0;
  PM.note_op_end ~fiber:0;
  PM.note_event ~fiber:0;
  let m = PM.create ~starvation_ops:2 () in
  PM.with_monitor m (fun () ->
      PM.note_op_start ~fiber:1;
      for _ = 1 to 2 do
        PM.note_op_start ~fiber:0;
        PM.note_op_end ~fiber:0
      done);
  Alcotest.(check bool) "uninstalled after with_monitor" true
    (!PM.active = None);
  Alcotest.(check (list bool)) "statics fed the installed monitor"
    [ true ]
    (List.map (fun k -> k = PM.Starvation) (kinds m))

(* ------------------------------------------------------------------ *)
(* Suspension classifier vs the registry's declared classes             *)

(* Two fibers, each one push and one pop. [tids] picks the shard mapping
   (relevant for SEC: tids 0,2 share aggregator 0 of 2; tids 0,1 land on
   different shards). The final check is irrelevant — the classifier
   only asks whether the peers complete. *)
let stack_scenario ?(tids = [| 0; 1 |]) (module M : Registry.MAKER) () =
  let module St = M (SP) in
  let s = St.create ~max_threads:8 () in
  let fiber tid () =
    St.push s ~tid tid;
    ignore (St.pop s ~tid)
  in
  (Array.to_list (Array.map fiber tids), fun () -> true)

let classify ?tids maker =
  Explore.classify ~fibers:2 (stack_scenario ?tids maker)

let check_declared_class ?tids (entry : Registry.entry) () =
  let c = classify ?tids entry.Registry.maker in
  Alcotest.(check string)
    (Printf.sprintf "%s classifies as declared (%d suspension runs)"
       entry.Registry.name c.Explore.runs)
    (Explore.progress_class_to_string entry.Registry.progress)
    (Explore.progress_class_to_string c.Explore.verdict);
  match (c.Explore.verdict, c.Explore.witness) with
  | Explore.Blocking, None ->
      Alcotest.fail "a Blocking verdict must carry a witness"
  | Explore.Lock_free, Some _ ->
      Alcotest.fail "a Lock_free verdict must not carry a witness"
  | _ -> ()

(* SEC is declared Blocking because of its combining protocol: two
   threads on the *same* shard, one suspended mid-batch, starves the
   other — and the classifier must find such a witness, reproducible
   with [suspended_run]. *)
let test_sec_same_shard_witness_replays () =
  let scenario = stack_scenario ~tids:[| 0; 2 |] Registry.sec.Registry.maker in
  let c = Explore.classify ~fibers:2 scenario in
  match (c.Explore.verdict, c.Explore.witness) with
  | Explore.Blocking, Some (victim, after) -> (
      match Explore.suspended_run ~victim ~after scenario with
      | Explore.Blocked -> ()
      | Explore.Survived _ -> Alcotest.fail "witness did not reproduce"
      | Explore.Crashed msg -> Alcotest.failf "witness crashed: %s" msg)
  | _ -> Alcotest.fail "expected Blocking with a witness"

(* ...but threads sharded onto *different* aggregators never wait on
   each other: the elimination/combining fast path is per-shard, and the
   shared top is plain lock-free CAS. This is the paper's point — the
   blocking protocol is confined to a shard. *)
let test_sec_cross_shard_lock_free () =
  let c = classify ~tids:[| 0; 1 |] Registry.sec.Registry.maker in
  Alcotest.(check string) "cross-shard SEC survives any single suspension"
    "lock_free"
    (Explore.progress_class_to_string c.Explore.verdict)

(* ------------------------------------------------------------------ *)
(* Combiner handoff under an unfair schedule (ccsynch / hsynch)         *)

(* A *preempted* (descheduled, later resumed) combiner must still drain
   every announcement — unlike a suspended one, which is what makes the
   protocol blocking. Conservation check: everything the two fibers
   pushed is there at the end, nothing lost, nothing duplicated. *)
let combiner_conservation_scenario (module M : Registry.MAKER) () =
  let module St = M (SP) in
  let s = St.create ~max_threads:4 () in
  let fiber tid () =
    St.push s ~tid (10 * tid);
    St.push s ~tid ((10 * tid) + 1)
  in
  ( [ fiber 0; fiber 1 ],
    fun () ->
      let rec drain acc =
        match St.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
      in
      List.sort compare (drain []) = [ 0; 1; 10; 11 ] )

let test_combiner_conservation entry () =
  match
    Explore.for_all ~max_preemptions:2 ~quantum:6 ~max_schedules:2_000
      (combiner_conservation_scenario entry.Registry.maker)
  with
  | Explore.Passed _ -> ()
  | Explore.Failed { kind; schedule; _ } ->
      Alcotest.failf "%s lost announcements (kind %s, schedule %s)"
        entry.Registry.name
        (match kind with
        | Explore.Check_failed -> "check_failed"
        | Explore.Livelock -> "livelock"
        | Explore.Fiber_raised m -> "raised: " ^ m
        | Explore.Race_detected m -> "race: " ^ m
        | Explore.Reclamation_violation m -> "reclamation: " ^ m)
        (Explore.schedule_to_string schedule)

(* ------------------------------------------------------------------ *)
(* The suspension adversary in the discrete-event simulator             *)

(* Freeze worker 0 just before its 2nd atomic access. For the lock
   stack that is inside the critical section (access 1 is the winning
   exchange, access 2 the release store): worker 1 spins forever, the
   event budget runs out, and the monitor suspects livelock. *)
let suspended_sim_run maker =
  let m = PM.create ~livelock_events:2_000 () in
  let outcome =
    match
      Sim.run ~topology:Topology.testbox ~progress:m ~suspend:(0, 2)
        ~max_events:50_000 (fun () ->
          let module Maker = (val maker : Registry.MAKER) in
          let module St = Maker (SP) in
          let s = St.create ~max_threads:2 () in
          for slot = 0 to 1 do
            Sim.spawn (fun () ->
                PM.on_op_start m ~fiber:slot;
                St.push s ~tid:slot slot;
                PM.on_op_end m ~fiber:slot;
                PM.on_op_start m ~fiber:slot;
                ignore (St.pop s ~tid:slot);
                PM.on_op_end m ~fiber:slot)
          done;
          Sim.await_all ())
    with
    | _ -> `Completed
    | exception Sim.Stalled -> `Stalled
  in
  (outcome, m)

let test_sim_suspended_lock_holder_stalls () =
  let outcome, m = suspended_sim_run Registry.lock.Registry.maker in
  Alcotest.(check bool) "suspended lock holder exhausts the event budget"
    true (outcome = `Stalled);
  Alcotest.(check bool) "monitor suspected livelock" true
    (List.mem PM.Livelock_suspected (kinds m))

let test_sim_suspended_treiber_completes () =
  let outcome, m = suspended_sim_run Registry.treiber.Registry.maker in
  Alcotest.(check bool) "treiber peers outlive a suspended fiber" true
    (outcome = `Completed);
  Alcotest.(check bool) "no livelock suspected" false
    (List.mem PM.Livelock_suspected (kinds m))

(* ------------------------------------------------------------------ *)
(* Lock stack with more threads than cores (testbox: 8 HW threads on 4
   physical cores). The yield-after-budget path in [acquire] is what
   lets a waiter hand its core back to a descheduled holder; the run
   completing with every pop finding a value is the regression. *)
let test_lock_stack_oversubscribed_completes () =
  let n = 8 and per = 5 in
  let popped, stats =
    Sim.run ~topology:Topology.testbox (fun () ->
        let module Maker = (val Registry.lock.Registry.maker : Registry.MAKER)
        in
        let module St = Maker (SP) in
        let s = St.create ~max_threads:n () in
        let count = SP.Atomic.make 0 in
        for slot = 0 to n - 1 do
          Sim.spawn (fun () ->
              for i = 1 to per do
                St.push s ~tid:slot ((slot * 100) + i);
                match St.pop s ~tid:slot with
                | Some _ -> ignore (SP.Atomic.fetch_and_add count 1)
                | None -> ()
              done)
        done;
        Sim.await_all ();
        SP.Atomic.get count)
  in
  Alcotest.(check int) "every pop found a value" (n * per) popped;
  Alcotest.(check int) "all fibers ran" n stats.Sim.fibers

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "progress"
    [
      ( "monitor",
        [
          quick "starvation watermark" test_monitor_flags_starvation;
          quick "progressing fibers clean"
            test_monitor_completing_fibers_not_starved;
          quick "livelock stretch" test_monitor_flags_livelock;
          quick "idle events clean" test_monitor_idle_events_not_livelock;
          quick "fiber exit clears in-flight"
            test_monitor_fiber_exit_clears_in_flight;
          quick "note statics and installation"
            test_note_statics_and_installation;
        ] );
      ( "classifier",
        List.map
          (fun (entry : Registry.entry) ->
            let tids =
              (* SEC's Blocking declaration is a same-shard fact. *)
              if entry.Registry.name = "SEC" then Some [| 0; 2 |] else None
            in
            slow
              (Printf.sprintf "%s is %s" entry.Registry.name
                 (Explore.progress_class_to_string entry.Registry.progress))
              (check_declared_class ?tids entry))
          (Registry.paper_set @ [ Registry.lock; Registry.hsynch ])
        @ [
            slow "SEC same-shard witness replays"
              test_sec_same_shard_witness_replays;
            slow "SEC cross-shard is lock-free" test_sec_cross_shard_lock_free;
          ] );
      ( "combiner-handoff",
        [
          slow "ccsynch conservation under preemption"
            (test_combiner_conservation Registry.cc);
          slow "hsynch conservation under preemption"
            (test_combiner_conservation Registry.hsynch);
        ] );
      ( "sim-suspension",
        [
          quick "suspended lock holder stalls"
            test_sim_suspended_lock_holder_stalls;
          quick "treiber survives suspension"
            test_sim_suspended_treiber_completes;
          quick "lock stack, threads > cores"
            test_lock_stack_oversubscribed_completes;
        ] );
    ]
