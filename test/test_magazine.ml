(* The zero-allocation perf layer: per-domain node magazines
   (lib/reclaim/magazine.ml), the reclaim checker's recycling contract,
   the magazine-backed TRB-EBR's observational equivalence with plain
   Treiber, and the contention-adaptive sharding controller.

   The sweeps in test_reclaim.ml already model-check the magazine-backed
   structures under preemption with [check_reclamation]; this file covers
   the allocator's own semantics and the end-to-end properties the perf
   work claims (fewer allocations, unchanged behaviour, K adapting to
   contention). *)

module Mag = Sec_reclaim.Magazine
module NMag = Sec_reclaim.Magazine.Make (Sec_prim.Native)
module Chk = Sec_analysis.Reclaim_checker
module Config = Sec_core.Config
module Topology = Sec_sim.Topology
module Sim = Sec_sim.Sim
module SP = Sim.Prim

module type STACK = Sec_spec.Stack_intf.S

(* ------------------------------------------------------------------ *)
(* Magazine unit semantics (native substrate, single thread drives
   several tids — legal because we never run two tids concurrently).   *)

let test_local_hit_lifo () =
  let m = NMag.create ~capacity:4 ~max_threads:2 () in
  Alcotest.(check int) "capacity accessor" 4 (NMag.capacity m);
  Alcotest.(check bool)
    "empty magazine misses" true
    (NMag.alloc m ~tid:0 = None);
  let a = ref 1 and b = ref 2 in
  NMag.recycle m ~tid:0 a;
  NMag.recycle m ~tid:0 b;
  let got_b =
    match NMag.alloc m ~tid:0 with Some n -> n == b | None -> false
  in
  Alcotest.(check bool) "LIFO: last recycled node comes out first" true got_b;
  let got_a =
    match NMag.alloc m ~tid:0 with Some n -> n == a | None -> false
  in
  Alcotest.(check bool) "then the earlier one" true got_a;
  Alcotest.(check bool) "then dry again" true (NMag.alloc m ~tid:0 = None);
  let s = NMag.stats m in
  Alcotest.(check int) "hits" 2 s.Mag.hits;
  Alcotest.(check int) "misses" 2 s.Mag.misses;
  Alcotest.(check int) "recycled" 2 s.Mag.recycled

let test_invalid_capacity () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Magazine.create: capacity must be at least 1")
    (fun () -> ignore (NMag.create ~capacity:0 ()))

(* A full magazine emigrates to the depot as one chain, and a different
   tid — which never recycled anything — adopts those chains. *)
let test_depot_overflow_and_adoption () =
  let m = NMag.create ~capacity:2 ~max_threads:4 () in
  let nodes = Array.init 5 (fun i -> ref i) in
  Array.iter (fun n -> NMag.recycle m ~tid:0 n) nodes;
  (* capacity 2: recycles 3 and 5 each push a full chain depot-ward *)
  let s = NMag.stats m in
  Alcotest.(check int) "recycled" 5 s.Mag.recycled;
  Alcotest.(check int) "two chains emigrated" 2 s.Mag.depot_puts;
  (* tid 3 starts empty: everything it gets comes from the depot *)
  let adopted = ref 0 in
  (try
     while !adopted < 5 do
       match NMag.alloc m ~tid:3 with
       | Some _ -> incr adopted
       | None -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check int) "adopted the four depot-resident nodes" 4 !adopted;
  let s = NMag.stats m in
  Alcotest.(check int) "two chains adopted" 2 s.Mag.depot_gets;
  (* the fifth node stayed in tid 0's private magazine *)
  let got_last =
    match NMag.alloc m ~tid:0 with
    | Some n -> n == nodes.(4)
    | None -> false
  in
  Alcotest.(check bool) "owner still holds its private node" true got_last

let test_global_tallies () =
  Mag.Global.reset ();
  let m = NMag.create ~capacity:2 ~max_threads:2 () in
  ignore (NMag.alloc m ~tid:0);
  NMag.recycle m ~tid:0 (ref 0);
  ignore (NMag.alloc m ~tid:0);
  let s = Mag.Global.snapshot () in
  Alcotest.(check int) "global hits" 1 s.Mag.Global.hits;
  Alcotest.(check int) "global misses" 1 s.Mag.Global.misses;
  Alcotest.(check int) "global recycled" 1 s.Mag.Global.recycled;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Mag.Global.hit_rate s);
  Mag.Global.reset ();
  let z = Mag.Global.snapshot () in
  Alcotest.(check int) "reset clears" 0 (z.Mag.Global.hits + z.Mag.Global.misses + z.Mag.Global.recycled);
  Alcotest.(check (float 1e-9)) "empty hit rate" 0.0 (Mag.Global.hit_rate z)

(* ------------------------------------------------------------------ *)
(* The reclaim checker's recycling contract. *)

(* A node whose first life ran the full
   alloc -> publish -> access -> unlink -> retire -> reclaim cycle may
   re-enter a magazine; its reincarnation is a fresh node to the shadow
   heap and lives a clean second life. *)
let test_recycle_after_full_cycle_is_clean () =
  let t = Chk.create () in
  let id = Chk.on_alloc t ~fiber:0 in
  Chk.on_publish t ~fiber:0 ~node:id;
  Chk.on_enter t ~fiber:1;
  Chk.on_access t ~fiber:1 ~node:id;
  Chk.on_exit t ~fiber:1;
  Chk.on_unlink t ~fiber:0 ~node:id;
  Chk.on_retire t ~fiber:0 ~node:id;
  Chk.on_reclaim t ~fiber:0 ~node:id;
  let id' = Chk.on_recycle t ~fiber:0 ~node:id in
  Alcotest.(check bool) "reincarnation gets a fresh id" true (id' <> id);
  (* second life through the same protocol *)
  Chk.on_publish t ~fiber:0 ~node:id';
  Chk.on_unlink t ~fiber:0 ~node:id';
  Chk.on_retire t ~fiber:0 ~node:id';
  Chk.on_reclaim t ~fiber:0 ~node:id';
  Alcotest.(check int) "no reports" 0 (List.length (Chk.reports t))

(* Recycling a node whose destructor never ran (the grace period was
   skipped) is exactly the bug the contract exists to catch. *)
let test_recycle_of_live_reported () =
  let t = Chk.create () in
  let id = Chk.on_alloc t ~fiber:0 in
  Chk.on_publish t ~fiber:0 ~node:id;
  Chk.on_unlink t ~fiber:0 ~node:id;
  Chk.on_retire t ~fiber:0 ~node:id;
  ignore (Chk.on_recycle t ~fiber:1 ~node:id);
  match Chk.reports t with
  | [ r ] ->
      Alcotest.(check string)
        "kind" "recycle-of-live"
        (Chk.kind_to_string r.Chk.kind)
  | rs ->
      Alcotest.failf "expected exactly one report, got %d" (List.length rs)

(* ------------------------------------------------------------------ *)
(* Magazine-backed TRB-EBR behaves exactly like plain Treiber. *)

module NT = Sec_stacks.Treiber.Make (Sec_prim.Native)
module NE = Sec_reclaim.Treiber_ebr.Make (Sec_prim.Native)

(* Deterministic op stream, applied to both stacks in lockstep; every
   observable result must agree. The stream is long enough that EBR's
   grace periods expire and pushes really do draw recycled nodes (the
   global tallies prove it), so the equivalence covers second-life
   nodes, not just fresh ones. *)
let test_differential_vs_treiber () =
  Mag.Global.reset ();
  let t = NT.create ~max_threads:1 () in
  let e = NE.create ~max_threads:1 () in
  let state = ref 0x2545F491 in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = 1 to 10_000 do
    match rand 5 with
    | 0 | 1 | 2 ->
        NT.push t ~tid:0 i;
        NE.push e ~tid:0 i
    | 3 ->
        let a = NT.pop t ~tid:0 and b = NE.pop e ~tid:0 in
        Alcotest.(check (option int)) "pop agrees" a b
    | _ ->
        let a = NT.peek t ~tid:0 and b = NE.peek e ~tid:0 in
        Alcotest.(check (option int)) "peek agrees" a b
  done;
  let rec drain () =
    let a = NT.pop t ~tid:0 and b = NE.pop e ~tid:0 in
    Alcotest.(check (option int)) "drain agrees" a b;
    if a <> None then drain ()
  in
  drain ();
  let s = Mag.Global.snapshot () in
  Alcotest.(check bool)
    "the run exercised recycled nodes" true
    (s.Mag.Global.recycled > 0 && s.Mag.Global.hits > 0)

(* The same equivalence under the simulator's interleavings: recorded
   concurrent histories of the magazine-backed stack stay linearizable
   against the sequential LIFO spec. *)
module SimTrbEbr = Sec_reclaim.Treiber_ebr.Make (SP)

let test_sim_linearizable () =
  let module I = Sec_spec.History.Instrument (SP) (SimTrbEbr) in
  for seed = 1 to 6 do
    let events, _ =
      Sim.run ~seed ~jitter:40 ~topology:Topology.testbox (fun () ->
          let t = I.create ~max_threads:4 () in
          for _ = 1 to 4 do
            Sim.spawn (fun () ->
                let tid = Sim.fiber_id () in
                for i = 1 to 6 do
                  match SP.rand_int 5 with
                  | 0 | 1 -> I.push t ~tid ((tid * 1_000_000) + i)
                  | 2 | 3 -> ignore (I.pop t ~tid)
                  | _ -> ignore (I.peek t ~tid)
                done)
          done;
          Sim.await_all ();
          Sec_spec.History.events t.I.history)
    in
    match Sec_spec.Lin_check.check events with
    | Sec_spec.Lin_check.Linearizable -> ()
    | Sec_spec.Lin_check.Gave_up ->
        Printf.eprintf "[TRB-EBR] lin check gave up (seed %d)\n%!" seed
    | Sec_spec.Lin_check.Not_linearizable ->
        Alcotest.failf "TRB-EBR: seed %d produced a non-linearizable history"
          seed
  done

(* And the point of it all: the magazine-backed stack allocates fewer
   nodes than plain Treiber on the same workload, counted by the
   simulator's first-class allocation statistic. *)
module SimTrb = Sec_stacks.Treiber.Make (SP)

let sim_allocs (module S : STACK) =
  let _, stats =
    Sim.run ~seed:11 ~jitter:3 ~topology:Topology.testbox (fun () ->
        let s = S.create ~max_threads:8 () in
        for _ = 1 to 4 do
          Sim.spawn (fun () ->
              let tid = Sim.fiber_id () in
              for i = 1 to 300 do
                S.push s ~tid i;
                ignore (S.pop s ~tid)
              done)
        done;
        Sim.await_all ())
  in
  stats.Sim.allocs

let test_fewer_allocations () =
  let trb = sim_allocs (module SimTrb) in
  let ebr = sim_allocs (module SimTrbEbr) in
  Alcotest.(check bool)
    (Printf.sprintf "TRB-EBR allocates less (TRB %d, TRB-EBR %d)" trb ebr)
    true (ebr < trb)

(* ------------------------------------------------------------------ *)
(* Contention-adaptive sharding. *)

module SimSec = Sec_core.Sec_stack.Make (SP)

(* A lone fiber produces singleton batches, so the controller must hold
   the active shard count at one; eight contending fibers pile many ops
   into each batch, so it must grow past one; and once the contention
   drains away, windows of singleton batches shrink it back to one. *)
let test_adaptive_convergence () =
  let config =
    Config.with_adaptive
      (Config.with_recycling
         { Config.default with Config.num_aggregators = 4 })
  in
  let solo_start, peak, settled =
    fst
      (Sim.run ~seed:3 ~jitter:4 ~topology:Topology.testbox (fun () ->
           let s = SimSec.create_with ~config ~max_threads:16 () in
           for i = 1 to 64 do
             SimSec.push s ~tid:0 i;
             ignore (SimSec.pop s ~tid:0)
           done;
           let solo_start = SimSec.active_aggregators s in
           let peaks = Array.make 8 1 in
           for w = 0 to 7 do
             Sim.spawn (fun () ->
                 let tid = Sim.fiber_id () in
                 for i = 1 to 300 do
                   SimSec.push s ~tid i;
                   ignore (SimSec.pop s ~tid);
                   if i land 15 = 0 then
                     peaks.(w) <- max peaks.(w) (SimSec.active_aggregators s)
                 done)
           done;
           Sim.await_all ();
           let peak = Array.fold_left max 1 peaks in
           for i = 1 to 400 do
             SimSec.push s ~tid:0 i;
             ignore (SimSec.pop s ~tid:0)
           done;
           (solo_start, peak, SimSec.active_aggregators s)))
  in
  Alcotest.(check int) "a lone fiber holds one shard" 1 solo_start;
  Alcotest.(check bool)
    (Printf.sprintf "contention grows the shard count (peak %d)" peak)
    true (peak > 1);
  Alcotest.(check int) "cooldown shrinks back to one shard" 1 settled

(* With the controller off, routing is the static [tid mod K] of the
   seed implementation and the active count always reads K. *)
let test_static_when_disabled () =
  let static =
    fst
      (Sim.run ~seed:3 ~jitter:4 ~topology:Topology.testbox (fun () ->
           let s =
             SimSec.create_with ~config:Config.default ~max_threads:8 ()
           in
           for i = 1 to 32 do
             SimSec.push s ~tid:0 i;
             ignore (SimSec.pop s ~tid:0)
           done;
           SimSec.active_aggregators s))
  in
  Alcotest.(check int)
    "adaptive=false keeps every aggregator active"
    Config.default.Config.num_aggregators static

let () =
  Alcotest.run "magazine"
    [
      ( "allocator",
        [
          Alcotest.test_case "local hit is LIFO" `Quick test_local_hit_lifo;
          Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
          Alcotest.test_case "depot overflow + cross-tid adoption" `Quick
            test_depot_overflow_and_adoption;
          Alcotest.test_case "global tallies" `Quick test_global_tallies;
        ] );
      ( "checker contract",
        [
          Alcotest.test_case "recycle after full cycle is clean" `Quick
            test_recycle_after_full_cycle_is_clean;
          Alcotest.test_case "recycle of live node reported" `Quick
            test_recycle_of_live_reported;
        ] );
      ( "differential",
        [
          Alcotest.test_case "lockstep with plain Treiber" `Quick
            test_differential_vs_treiber;
          Alcotest.test_case "sim histories linearizable" `Quick
            test_sim_linearizable;
          Alcotest.test_case "fewer simulated allocations" `Quick
            test_fewer_allocations;
        ] );
      ( "adaptive sharding",
        [
          Alcotest.test_case "converges with contention" `Quick
            test_adaptive_convergence;
          Alcotest.test_case "static when disabled" `Quick
            test_static_when_disabled;
        ] );
    ]
