examples/simulator_playground.ml: Format List Printf Sec_harness Sec_sim
