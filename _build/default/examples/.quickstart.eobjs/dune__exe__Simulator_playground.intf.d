examples/simulator_playground.mli:
