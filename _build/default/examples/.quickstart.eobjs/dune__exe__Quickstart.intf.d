examples/quickstart.mli:
