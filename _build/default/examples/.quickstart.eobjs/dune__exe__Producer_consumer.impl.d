examples/producer_consumer.ml: Atomic Domain Format List Printf Sec_core Sec_prim Sec_sim
