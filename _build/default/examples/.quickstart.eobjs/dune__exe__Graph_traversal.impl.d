examples/graph_traversal.ml: Array Atomic Domain Int64 List Printf Sec_core Sec_prim Unix
