examples/quickstart.ml: Domain Format List Printf Sec_core Sec_prim
