examples/freelist.mli:
