examples/freelist.ml: Atomic Bytes Char Domain Int64 List Printf Sec_core Sec_prim
