(* A tour of the discrete-event simulator as a library: run any concurrent
   code at a chosen machine scale, measure virtual time and coherence
   traffic, and reproduce a race deterministically from a seed.

     dune exec examples/simulator_playground.exe *)

module Sim = Sec_sim.Sim
module SP = Sim.Prim
module Topology = Sec_sim.Topology

(* 1. The contention cliff: the same fetch&add loop, private vs shared. *)
let contention_cliff () =
  print_endline "1. Contention: 24 fibers incrementing counters on emerald";
  let run shared_counter =
    let (), stats =
      Sim.run ~topology:Topology.emerald (fun () ->
          let shared = SP.Atomic.make 0 in
          for _ = 1 to 24 do
            Sim.spawn (fun () ->
                let c = if shared_counter then shared else SP.Atomic.make 0 in
                for _ = 1 to 1_000 do
                  ignore (SP.Atomic.fetch_and_add c 1)
                done)
          done;
          Sim.await_all ())
    in
    stats
  in
  let private_ = run false and shared = run true in
  Printf.printf "   private counters: %7d cycles, %5d transfers\n"
    private_.Sim.elapsed_cycles private_.Sim.traffic.Sec_sim.Cache_model.transfers;
  Printf.printf "   one shared cell:  %7d cycles, %5d transfers  (%.0fx slower)\n"
    shared.Sim.elapsed_cycles shared.Sim.traffic.Sec_sim.Cache_model.transfers
    (float_of_int shared.Sim.elapsed_cycles
    /. float_of_int private_.Sim.elapsed_cycles)

(* 2. Machines are data: the same stack workload on all three testbeds. *)
let machine_comparison () =
  print_endline "2. One workload, three machines (SEC, 100% updates, all HW threads)";
  List.iter
    (fun topo ->
      let threads = Topology.max_threads topo in
      let m =
        Sec_harness.Sim_runner.run Sec_harness.Registry.sec.Sec_harness.Registry.maker
          ~topology:topo ~threads ~duration_cycles:100_000
          ~mix:Sec_harness.Workload.update_heavy ()
      in
      let label = Format.asprintf "%a" Topology.pp topo in
      Printf.printf "   %-48s %6.1f Mops/s\n" label
        m.Sec_harness.Measurement.mops)
    [ Topology.emerald; Topology.icelake; Topology.sapphire ]

(* 3. Determinism: a seed names an interleaving, so a "race" reproduces. *)
let deterministic_replay () =
  print_endline "3. Deterministic replay: who wins the race, by seed";
  let winner seed =
    let w, _ =
      Sim.run ~seed ~jitter:50 ~topology:Topology.testbox (fun () ->
          let flag = SP.Atomic.make (-1) in
          for _ = 1 to 4 do
            Sim.spawn (fun () ->
                let me = Sim.fiber_id () in
                SP.relax (1 + SP.rand_int 100);
                ignore (SP.Atomic.compare_and_set flag (-1) me))
          done;
          Sim.await_all ();
          SP.Atomic.get flag)
    in
    w
  in
  List.iter
    (fun seed ->
      let a = winner seed and b = winner seed in
      assert (a = b);
      Printf.printf "   seed %d -> fiber %d wins (reproducibly)\n" seed a)
    [ 1; 2; 3; 4; 5 ]

let () =
  contention_cliff ();
  machine_comparison ();
  deterministic_replay ()
