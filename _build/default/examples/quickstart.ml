(* Quickstart: create a SEC stack, use it from a few domains, inspect the
   batching statistics.

     dune exec examples/quickstart.exe *)

module Sec = Sec_core.Sec_stack.Make (Sec_prim.Native)

let () =
  (* Two aggregators (the paper's default), statistics on. *)
  let config = Sec_core.Config.(with_stats default) in
  let stack = Sec.create_with ~config ~max_threads:4 () in

  (* Single-threaded use: an ordinary stack. *)
  Sec.push stack ~tid:0 1;
  Sec.push stack ~tid:0 2;
  assert (Sec.peek stack ~tid:0 = Some 2);
  assert (Sec.pop stack ~tid:0 = Some 2);
  assert (Sec.pop stack ~tid:0 = Some 1);
  assert (Sec.pop stack ~tid:0 = None);

  (* Concurrent use: each domain gets its own thread id in
     [0, max_threads); that is the only contract. *)
  let ops_per_domain = 50_000 in
  let worker tid () =
    for i = 1 to ops_per_domain do
      if i mod 2 = 0 then Sec.push stack ~tid i
      else ignore (Sec.pop stack ~tid)
    done
  in
  let domains = List.init 3 (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;

  Printf.printf "final stack depth: %d\n" (Sec.depth stack);
  Format.printf "batch statistics:  %a@." Sec_core.Sec_stats.pp (Sec.stats stack)
