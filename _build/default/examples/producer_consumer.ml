(* Balanced producers and consumers — the elimination showcase. Producers
   push, consumers pop; most operations should cancel in SEC's batches
   without ever touching the shared stack. Runs natively, then replays the
   same scenario on the simulated 56-thread Emerald Rapids machine to show
   the statistics at paper scale.

     dune exec examples/producer_consumer.exe *)

let native () =
  let module Sec = Sec_core.Sec_stack.Make (Sec_prim.Native) in
  let config = Sec_core.Config.(with_stats default) in
  let domains = 4 in
  let stack = Sec.create_with ~config ~max_threads:domains () in
  let produced = Atomic.make 0 and consumed = Atomic.make 0 in
  let per_domain = 40_000 in
  (* Split roles by half-range, NOT by tid parity: SEC shards threads over
     aggregators by [tid mod aggregators], and a parity split would place
     all producers in one aggregator and all consumers in the other,
     leaving nothing to eliminate. *)
  let worker tid () =
    if tid < domains / 2 then
      for i = 1 to per_domain do
        Sec.push stack ~tid i;
        Atomic.incr produced
      done
    else
      for _ = 1 to per_domain do
        match Sec.pop stack ~tid with
        | Some _ -> Atomic.incr consumed
        | None -> ()
      done
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  Printf.printf "native (%d domains): produced=%d consumed=%d leftover=%d\n"
    domains (Atomic.get produced) (Atomic.get consumed) (Sec.depth stack);
  Format.printf "  %a@." Sec_core.Sec_stats.pp (Sec.stats stack)

let simulated () =
  let module SP = Sec_sim.Sim.Prim in
  let module Sec = Sec_core.Sec_stack.Make (SP) in
  let threads = 56 in
  let stats, _ =
    Sec_sim.Sim.run ~topology:Sec_sim.Topology.emerald (fun () ->
        let config = Sec_core.Config.(with_stats default) in
        let stack = Sec.create_with ~config ~max_threads:threads () in
        for _ = 1 to threads do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              if tid < threads / 2 then
                for i = 1 to 500 do
                  Sec.push stack ~tid i
                done
              else
                for _ = 1 to 500 do
                  ignore (Sec.pop stack ~tid)
                done)
        done;
        Sec_sim.Sim.await_all ();
        Sec.stats stack)
  in
  Format.printf "simulated (56 threads on emerald):@.  %a@."
    Sec_core.Sec_stats.pp stats;
  Printf.printf
    "  (high %%elimination means most operations never touched the stack)\n"

let () =
  native ();
  simulated ()
