(* A shared free-list of reusable buffers backed by the SEC stack — the
   "shared freelists in garbage collection" motivation from the paper's
   introduction. Threads acquire a buffer (pop, or allocate fresh when the
   list is empty) and release it back (push); LIFO order maximises cache
   reuse of recently freed buffers.

     dune exec examples/freelist.exe *)

module Sec = Sec_core.Sec_stack.Make (Sec_prim.Native)

type buffer = { id : int; data : bytes }

let buffer_size = 4096

let () =
  let domains = 4 in
  let freelist : buffer Sec.t = Sec.create ~max_threads:domains () in
  let fresh_allocations = Atomic.make 0 in
  let acquire ~tid =
    match Sec.pop freelist ~tid with
    | Some b -> b
    | None ->
        let id = Atomic.fetch_and_add fresh_allocations 1 in
        { id; data = Bytes.create buffer_size }
  in
  let release ~tid b = Sec.push freelist ~tid b in

  let acquisitions_per_domain = 30_000 in
  let worker tid () =
    let rng = Sec_prim.Rng.create (Int64.of_int (tid + 1)) in
    (* Hold a small, varying working set to create real churn. *)
    let held = ref [] in
    for _ = 1 to acquisitions_per_domain do
      let b = acquire ~tid in
      Bytes.set b.data 0 (Char.chr (b.id land 0xff));
      held := b :: !held;
      if List.length !held > 1 + Sec_prim.Rng.int rng 4 then begin
        match !held with
        | b :: rest ->
            release ~tid b;
            held := rest
        | [] -> ()
      end
    done;
    List.iter (release ~tid) !held
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;

  let total = domains * acquisitions_per_domain in
  let fresh = Atomic.get fresh_allocations in
  Printf.printf "acquisitions:      %d\n" total;
  Printf.printf "fresh allocations: %d (%.2f%% — the rest were reused)\n" fresh
    (100. *. float_of_int fresh /. float_of_int total);
  Printf.printf "buffers on freelist at exit: %d\n" (Sec.depth freelist);
  if Sec.depth freelist <> fresh then failwith "freelist leaked buffers!";
  print_endline "all buffers accounted for."
