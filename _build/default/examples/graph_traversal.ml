(* Concurrent graph reachability with a SEC stack as the shared work pool —
   the "concurrent graph algorithms" motivation from the paper's
   introduction. A LIFO pool gives DFS-like locality; correctness only
   needs pool semantics, which is why concurrent stacks make good work
   pools.

     dune exec examples/graph_traversal.exe *)

module Sec = Sec_core.Sec_stack.Make (Sec_prim.Native)

(* A random sparse digraph as adjacency lists. *)
let make_graph ~nodes ~out_degree ~seed =
  let rng = Sec_prim.Rng.create (Int64.of_int seed) in
  Array.init nodes (fun _ ->
      List.init out_degree (fun _ -> Sec_prim.Rng.int rng nodes))

let sequential_reachable graph root =
  let seen = Array.make (Array.length graph) false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs graph.(v)
    end
  in
  dfs root;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let parallel_reachable graph root ~domains =
  let pool = Sec.create ~max_threads:domains () in
  let visited = Array.init (Array.length graph) (fun _ -> Atomic.make false) in
  (* Work accounting for termination: [pending] counts nodes pushed but
     not yet fully processed; when it reaches zero the traversal is done. *)
  let pending = Atomic.make 1 in
  Sec.push pool ~tid:0 root;
  let worker tid () =
    let continue = ref true in
    while !continue do
      match Sec.pop pool ~tid with
      | Some v ->
          if not (Atomic.exchange visited.(v) true) then
            List.iter
              (fun w ->
                if not (Atomic.get visited.(w)) then begin
                  Atomic.incr pending;
                  Sec.push pool ~tid w
                end)
              graph.(v);
          ignore (Atomic.fetch_and_add pending (-1))
      | None -> if Atomic.get pending = 0 then continue := false
    done
  in
  let spawned = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join spawned;
  Array.fold_left (fun acc b -> acc + if Atomic.get b then 1 else 0) 0 visited

let () =
  let graph = make_graph ~nodes:20_000 ~out_degree:4 ~seed:42 in
  let expected = sequential_reachable graph 0 in
  let t0 = Unix.gettimeofday () in
  let got = parallel_reachable graph 0 ~domains:4 in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "sequential reachable: %d\n" expected;
  Printf.printf "parallel reachable:   %d  (%.1f ms, 4 domains)\n" got
    (1000. *. dt);
  if got <> expected then failwith "traversals disagree!";
  print_endline "traversals agree."
