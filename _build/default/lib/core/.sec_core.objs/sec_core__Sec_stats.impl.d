lib/core/sec_stats.ml: Format
