lib/core/sec_stack.mli: Config Sec_prim Sec_spec Sec_stats
