lib/core/sec_stack.ml: Array Config Sec_prim Sec_stats
