lib/core/sec_pool.ml: Array List Option Sec_prim
