(* Snapshot of SEC batch statistics, as reported in Tables 1–3 of the
   paper. Collected at freeze time by the freezer thread (see
   {!Sec_stack}), so the numbers describe exactly the batches that were
   formed during a run. *)

type t = {
  batches : int;  (** number of frozen batches *)
  operations : int;  (** operations that belonged to those batches *)
  eliminated : int;  (** operations cancelled pairwise inside a batch *)
  combined : int;  (** operations applied to the shared stack by combiners *)
  excluded : int;
      (** announcements that landed after their batch's freeze and had to
          retry in a later batch (a diagnostic for freeze-window tuning:
          high values mean threads keep missing batches) *)
}

let empty =
  { batches = 0; operations = 0; eliminated = 0; combined = 0; excluded = 0 }

(** [diff later earlier] — counters accumulated between two snapshots
    (e.g. to exclude a prefill phase from a measurement). *)
let diff later earlier =
  {
    batches = later.batches - earlier.batches;
    operations = later.operations - earlier.operations;
    eliminated = later.eliminated - earlier.eliminated;
    combined = later.combined - earlier.combined;
    excluded = later.excluded - earlier.excluded;
  }

(** Average batch size ("Batching Degree" in Tables 1–3). *)
let batching_degree t =
  if t.batches = 0 then 0. else float_of_int t.operations /. float_of_int t.batches

(** Percentage of batch operations that were eliminated ("%Elimination"). *)
let pct_eliminated t =
  if t.operations = 0 then 0.
  else 100. *. float_of_int t.eliminated /. float_of_int t.operations

(** Percentage applied to the shared stack by a combiner ("%Combining"). *)
let pct_combined t =
  if t.operations = 0 then 0.
  else 100. *. float_of_int t.combined /. float_of_int t.operations

let pp ppf t =
  Format.fprintf ppf
    "batches=%d ops=%d batching_degree=%.1f elim=%.0f%% combining=%.0f%% \
     excluded=%d"
    t.batches t.operations (batching_degree t) (pct_eliminated t)
    (pct_combined t) t.excluded
