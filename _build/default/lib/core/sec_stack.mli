(** SEC — the Sharded Elimination and Combining stack of Singh, Metaxakis
    and Fatourou (PPoPP '26): a blocking, linearizable concurrent stack.

    Threads are sharded across aggregators; operations announced in the
    same *batch* eliminate pairwise through two fetch&increment counters,
    and each batch's survivors are applied to the shared stack by a single
    per-batch combiner with one CAS. See the implementation header for the
    pseudocode mapping. *)

module Make (_ : Sec_prim.Prim_intf.S) : sig
  include Sec_spec.Stack_intf.S

  (** [create_with ~config ~max_threads ()] — full control over sharding,
      freezer backoff and statistics collection. [create] uses
      {!Config.default}. *)
  val create_with : config:Config.t -> ?max_threads:int -> unit -> 'a t

  (** Batch statistics accumulated so far ({!Sec_stats.empty} unless the
      stack was created with [collect_stats = true]). *)
  val stats : 'a t -> Sec_stats.t

  val config : 'a t -> Config.t

  (** Number of nodes currently in the shared stack. O(n); takes a single
      snapshot of the top pointer — meant for tests and examples. *)
  val depth : 'a t -> int
end
