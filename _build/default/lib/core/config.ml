(* Tuning knobs of the SEC stack (paper, Sections 3 and 6). *)

type t = {
  num_aggregators : int;
      (** K: threads are assigned to aggregators by [tid mod K]. The paper
          finds two aggregators best on most workloads (Figure 4). *)
  freeze_backoff : int;
      (** Budget, in relax units, for the freezer's adaptive wait before
          freezing its batch: it keeps polling while announcements still
          arrive, up to this total. A longer wait lets more operations
          join the batch, raising the elimination and combining degrees
          (paper, Section 3.1). [0] freezes immediately (the ablation
          benchmark uses this). *)
  collect_stats : bool;
      (** Record per-batch statistics (batching degree, %eliminated,
          %combined — Tables 1–3). Costs a few striped-counter updates per
          *batch* (not per operation). *)
}

let default = { num_aggregators = 2; freeze_backoff = 1024; collect_stats = false }

let validate t =
  if t.num_aggregators < 1 then
    invalid_arg "Sec_core.Config: num_aggregators must be at least 1";
  if t.freeze_backoff < 0 then
    invalid_arg "Sec_core.Config: freeze_backoff must be non-negative"

let with_aggregators k t = { t with num_aggregators = k }
let with_stats t = { t with collect_stats = true }

let pp ppf t =
  Format.fprintf ppf "{aggregators=%d; freeze_backoff=%d; stats=%b}"
    t.num_aggregators t.freeze_backoff t.collect_stats
