(** Linearizability checking of recorded stack histories against the
    sequential LIFO specification (Wing–Gong search with memoisation). *)

type result = Linearizable | Not_linearizable | Gave_up

(** [check ?max_states ?init events] decides whether the complete history
    [events] is linearizable with respect to a stack whose initial
    contents are [init] (top first). [max_states] bounds the search;
    exceeding it yields [Gave_up], never a wrong verdict. *)
val check :
  ?max_states:int -> ?init:'a list -> 'a History.event list -> result

val pp_result : Format.formatter -> result -> unit
