(** Recording of concurrent operation histories, for linearizability
    checking. Per-thread buffers: recording is synchronisation-free and
    does not perturb the interleavings it observes. *)

type 'a op = Push of 'a | Pop of 'a option | Peek of 'a option

type 'a event = { tid : int; op : 'a op; inv : int64; resp : int64 }

type 'a t

val create : max_threads:int -> 'a t

(** [add t ~tid op ~inv ~resp] records one completed operation. Only
    thread [tid] may record under that tid. *)
val add : 'a t -> tid:int -> 'a op -> inv:int64 -> resp:int64 -> unit

(** All recorded events, sorted by invocation time. Call only after all
    recording threads are done. *)
val events : 'a t -> 'a event list

val length : 'a t -> int
val clear : 'a t -> unit

val pp_op : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a op -> unit
val pp_event :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a event -> unit

(** [Instrument (P) (S)] is stack [S] with every operation recorded into an
    embedded history, timestamped by [P]'s clock. *)
module Instrument (_ : Sec_prim.Prim_intf.S) (S : Stack_intf.S) : sig
  type 'a instrumented = { stack : 'a S.t; history : 'a t }

  val name : string
  val create : ?max_threads:int -> unit -> 'a instrumented
  val push : 'a instrumented -> tid:int -> 'a -> unit
  val pop : 'a instrumented -> tid:int -> 'a option
  val peek : 'a instrumented -> tid:int -> 'a option
end
