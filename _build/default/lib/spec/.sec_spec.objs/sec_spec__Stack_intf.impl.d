lib/spec/stack_intf.ml: Sec_prim
