lib/spec/seq_stack.ml: List
