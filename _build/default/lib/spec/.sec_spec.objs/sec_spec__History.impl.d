lib/spec/history.ml: Array Format Int64 List Sec_prim Stack_intf
