lib/spec/lin_check.mli: Format History
