lib/spec/lin_check.ml: Array Bytes Char Format Hashtbl History Int64 List
