lib/spec/conformance.ml: Array Domain List Printf Sec_prim Stack_intf
