lib/spec/seq_stack.mli:
