lib/spec/history.mli: Format Sec_prim Stack_intf
