lib/spec/conformance.mli: Sec_prim Stack_intf
