(* The common interface implemented by every concurrent stack in this
   repository (SEC and all its competitors), mirroring the paper's API:
   push, pop, peek over integer-like payloads, with an explicit thread id.

   [tid] identifies the calling thread; it must be in [0, max_threads) and
   two concurrent calls must never share a tid. The paper's algorithms use
   it to index per-thread slots (SEC aggregators, EB collision records, FC
   publication slots, CC-Synch nodes, TSI pools); Treiber ignores it. *)

module type S = sig
  type 'a t

  (** Short display name used in benchmark reports ("SEC", "TRB", ...). *)
  val name : string

  (** [create ~max_threads ()] builds an empty stack usable by up to
      [max_threads] concurrent threads (default 64). *)
  val create : ?max_threads:int -> unit -> 'a t

  val push : 'a t -> tid:int -> 'a -> unit

  (** [pop t ~tid] removes and returns the top element, or [None] when the
      stack is (linearizably) empty. *)
  val pop : 'a t -> tid:int -> 'a option

  (** [peek t ~tid] reads the top element without removing it. *)
  val peek : 'a t -> tid:int -> 'a option
end

(** Every implementation is a functor over the execution substrate, so the
    same code runs on native domains and inside the simulator. *)
module type MAKER = functor (_ : Sec_prim.Prim_intf.S) -> S
