(** Reusable conformance checks for {!Stack_intf.S} implementations —
    sequential LIFO semantics, conservation under concurrency, no phantom
    values — runnable on real domains or any other substrate via
    {!RUNNER}. *)

module type RUNNER = sig
  module P : Sec_prim.Prim_intf.S

  (** [run body] executes [body ~spawn ~await] in the substrate's context;
      [spawn] schedules a concurrent task, [await] joins them all. *)
  val run :
    (spawn:((unit -> unit) -> unit) -> await:(unit -> unit) -> 'a) -> 'a
end

(** Real domains ([Sec_prim.Native]). *)
module Domain_runner : RUNNER with module P = Sec_prim.Native

type failure = { check : string; detail : string }
type report = { passed : int; failures : failure list }

val merge : report -> report -> report

module Make (_ : RUNNER) (_ : Stack_intf.S) : sig
  val sequential_semantics : unit -> report
  val conservation : ?threads:int -> ?ops:int -> unit -> report
  val no_phantom_values : ?threads:int -> ?ops:int -> unit -> report

  (** Every check; [failures = []] means the implementation conforms. *)
  val all : ?threads:int -> ?ops:int -> unit -> report
end
