(* Reference sequential stack. Used as the specification in property tests
   and by the linearizability checker, and as the data structure protected
   by the combining executors (FC, CC-Synch). Not thread-safe. *)

type 'a t = { mutable items : 'a list; mutable depth : int }

let create () = { items = []; depth = 0 }

let push t v =
  t.items <- v :: t.items;
  t.depth <- t.depth + 1

let pop t =
  match t.items with
  | [] -> None
  | v :: rest ->
      t.items <- rest;
      t.depth <- t.depth - 1;
      Some v

let peek t = match t.items with [] -> None | v :: _ -> Some v
let length t = t.depth
let is_empty t = t.items = []
let to_list t = t.items

let of_list items = { items; depth = List.length items }
