(* Concurrent-operation histories: what each thread invoked, what it got
   back, and when. Recorded with per-thread buffers (no synchronisation on
   the hot path) and merged after the run; timestamps come from the
   substrate clock, so recorded real-time order is meaningful both natively
   and under the simulator's virtual time. *)

type 'a op = Push of 'a | Pop of 'a option | Peek of 'a option

type 'a event = { tid : int; op : 'a op; inv : int64; resp : int64 }

type 'a t = { buffers : 'a event list ref array }

let create ~max_threads = { buffers = Array.init max_threads (fun _ -> ref []) }

let add t ~tid op ~inv ~resp =
  let buf = t.buffers.(tid) in
  buf := { tid; op; inv; resp } :: !buf

let events t =
  let all = Array.fold_left (fun acc b -> List.rev_append !b acc) [] t.buffers in
  List.sort (fun a b -> Int64.compare a.inv b.inv) all

let length t = Array.fold_left (fun acc b -> acc + List.length !b) 0 t.buffers

let clear t = Array.iter (fun b -> b := []) t.buffers

let pp_op pp_v ppf = function
  | Push v -> Format.fprintf ppf "push(%a)" pp_v v
  | Pop None -> Format.fprintf ppf "pop()=empty"
  | Pop (Some v) -> Format.fprintf ppf "pop()=%a" pp_v v
  | Peek None -> Format.fprintf ppf "peek()=empty"
  | Peek (Some v) -> Format.fprintf ppf "peek()=%a" pp_v v

let pp_event pp_v ppf e =
  Format.fprintf ppf "[t%d %Ld..%Ld %a]" e.tid e.inv e.resp (pp_op pp_v) e.op

(* Wrap a stack so that every operation is recorded. The recorder must be
   sized for the same [max_threads] as the stack. *)
module Instrument (P : Sec_prim.Prim_intf.S) (S : Stack_intf.S) = struct
  type 'a instrumented = { stack : 'a S.t; history : 'a t }

  let name = S.name ^ "+rec"

  let create ?(max_threads = 64) () =
    { stack = S.create ~max_threads (); history = create ~max_threads }

  let push t ~tid v =
    let inv = P.now_ns () in
    S.push t.stack ~tid v;
    let resp = P.now_ns () in
    add t.history ~tid (Push v) ~inv ~resp

  let pop t ~tid =
    let inv = P.now_ns () in
    let r = S.pop t.stack ~tid in
    let resp = P.now_ns () in
    add t.history ~tid (Pop r) ~inv ~resp;
    r

  let peek t ~tid =
    let inv = P.now_ns () in
    let r = S.peek t.stack ~tid in
    let resp = P.now_ns () in
    add t.history ~tid (Peek r) ~inv ~resp;
    r
end
