(** Reference sequential stack: the specification that every concurrent
    implementation must be linearizable against. Not thread-safe. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val peek : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Top-first list of current contents. *)
val to_list : 'a t -> 'a list

(** Build from a top-first list. *)
val of_list : 'a list -> 'a t
