lib/funnel/agg_faa.ml: Array Sec_prim
