(* Sharded software fetch&add in the spirit of aggregating funnels [Roh,
   Wei, Ruppert, Fatourou, Jayanti & Shun, PPoPP 2025] — the technique
   whose nested partitioning SEC borrows (paper, Section 2).

   Threads are sharded over [shards]; within a shard they aggregate their
   addends into a batch using the same freeze idiom as SEC: fetch&increment
   yields each thread a prefix sum; the thread whose prefix is 0 becomes
   the batch leader, lingers briefly, closes the batch by installing a
   fresh one, snapshots the batch total, performs ONE fetch&add of the
   whole total on the central counter, and publishes the base. Every
   included thread returns [base + prefix]; threads that arrived after the
   snapshot retry in a later batch. The central counter is therefore hit
   once per batch instead of once per operation. *)

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type batch = {
    sum : int A.t; (* running prefix sum of announced addends *)
    total : int A.t; (* sum at close; -1 while open *)
    base : int A.t; (* central counter value for this batch; -1 until set *)
  }

  type shard = { batch : batch A.t }

  type t = {
    central : int A.t;
    shards : shard array;
    close_backoff : int;
    batches : int A.t; (* number of closed batches, for the ablation *)
  }

  let make_batch () =
    { sum = A.make_padded 0; total = A.make_padded (-1); base = A.make_padded (-1) }

  let create ?(shards = 2) ?(close_backoff = 64) ?(init = 0) () =
    if shards < 1 then invalid_arg "Agg_faa.create: shards must be positive";
    {
      central = A.make_padded init;
      shards = Array.init shards (fun _ -> { batch = A.make_padded (make_batch ()) });
      close_backoff;
      batches = A.make_padded 0;
    }

  let fetch_and_add t ~tid n =
    if n <= 0 then invalid_arg "Agg_faa.fetch_and_add: addend must be positive";
    let shard = t.shards.(tid mod Array.length t.shards) in
    let rec try_batch () =
      let batch = A.get shard.batch in
      let prefix = A.fetch_and_add batch.sum n in
      if prefix = 0 then begin
        (* Leader: let the batch fill, close it, hit the central counter
           once on everyone's behalf. *)
        if t.close_backoff > 0 then P.relax t.close_backoff;
        A.set shard.batch (make_batch ());
        let total = A.get batch.sum in
        let base = A.fetch_and_add t.central total in
        A.set batch.total total;
        A.set batch.base base;
        A.incr t.batches;
        base
      end
      else begin
        Backoff.spin_while (fun () -> A.get batch.base < 0);
        (* Included iff our whole range fits under the closing snapshot. *)
        if prefix + n <= A.get batch.total then A.get batch.base + prefix
        else try_batch ()
      end
    in
    try_batch ()

  (** Current value of the central counter (linearizes with leaders'
      central FAAs, not with individual announcements). *)
  let get t = A.get t.central

  let batches_closed t = A.get t.batches
end
