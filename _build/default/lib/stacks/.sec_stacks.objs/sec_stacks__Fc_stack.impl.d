lib/stacks/fc_stack.ml: Fc Sec_prim Sec_spec
