lib/stacks/hsynch.ml: Array Sec_prim
