lib/stacks/eb_stack.ml: Array Exchanger Sec_prim Sec_spec
