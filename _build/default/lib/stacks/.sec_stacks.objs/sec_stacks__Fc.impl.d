lib/stacks/fc.ml: Array Sec_prim
