lib/stacks/cc_stack.ml: Ccsynch Sec_prim Sec_spec
