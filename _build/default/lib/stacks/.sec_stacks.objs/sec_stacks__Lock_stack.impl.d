lib/stacks/lock_stack.ml: Sec_prim Sec_spec
