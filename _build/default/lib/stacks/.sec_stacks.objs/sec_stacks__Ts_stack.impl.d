lib/stacks/ts_stack.ml: Array Int64 Sec_prim Sec_spec
