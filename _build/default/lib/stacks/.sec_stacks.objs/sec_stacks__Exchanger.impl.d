lib/stacks/exchanger.ml: Int64 Sec_prim
