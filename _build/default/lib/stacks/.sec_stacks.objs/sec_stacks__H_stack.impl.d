lib/stacks/h_stack.ml: Hsynch Sec_prim Sec_spec
