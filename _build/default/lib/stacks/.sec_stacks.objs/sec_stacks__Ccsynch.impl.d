lib/stacks/ccsynch.ml: Array Sec_prim
