lib/stacks/treiber.ml: Sec_prim Sec_spec
