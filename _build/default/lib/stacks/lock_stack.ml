(* Coarse-grained baseline ("LCK"): a sequential stack guarded by a
   test-and-test-and-set spinlock with exponential backoff. Not in the
   paper's comparison, but useful to calibrate how much the cleverer
   designs actually buy. *)

module Make (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)

  type 'a t = { lock : bool A.t; items : 'a Sec_spec.Seq_stack.t }

  let name = "LCK"

  let create ?max_threads:_ () =
    { lock = A.make_padded false; items = Sec_spec.Seq_stack.create () }

  let acquire t =
    let backoff = Backoff.create () in
    let rec attempt () =
      if A.exchange t.lock true then begin
        (* Lock taken: spin on reads (cheap, line stays Shared), back off,
           then retry the exchange. *)
        Backoff.spin_while (fun () -> A.get t.lock);
        Backoff.once backoff;
        attempt ()
      end
    in
    attempt ()

  let release t = A.set t.lock false

  let push t ~tid:_ value =
    acquire t;
    Sec_spec.Seq_stack.push t.items value;
    release t

  let pop t ~tid:_ =
    acquire t;
    let r = Sec_spec.Seq_stack.pop t.items in
    release t;
    r

  let peek t ~tid:_ =
    acquire t;
    let r = Sec_spec.Seq_stack.peek t.items in
    release t;
    r
end
