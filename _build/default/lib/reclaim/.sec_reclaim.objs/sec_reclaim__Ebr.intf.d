lib/reclaim/ebr.mli: Sec_prim
