lib/reclaim/ebr.ml: Array List Sec_prim
