lib/reclaim/reclaimed_stack.ml: Ebr Sec_prim
