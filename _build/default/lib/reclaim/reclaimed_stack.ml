(* A Treiber stack integrated with epoch-based reclamation, following the
   paper's Section 4 methodology: traversals run inside an EBR critical
   section, and a node is retired the moment its value has been handed to
   the popping thread. In C++ the deferred destructor frees the node; in
   OCaml the GC frees memory, so the destructor instead releases whatever
   external resource rides on the node (and the tests use it to prove no
   node is destroyed while a reader might still hold it). *)

module Make (P : Sec_prim.Prim_intf.S) = struct
  module A = P.Atomic
  module Backoff = Sec_prim.Backoff.Make (P)
  module Ebr = Ebr.Make (P)

  type 'a node = { value : 'a; next : 'a node option; on_reclaim : unit -> unit }

  type 'a t = { top : 'a node option A.t; ebr : Ebr.t }

  let create ?(max_threads = 64) () =
    { top = A.make_padded None; ebr = Ebr.create ~max_threads () }

  (* [push t ~tid v ~on_reclaim] — [on_reclaim] runs once the node has
     been popped AND no concurrent operation can still reach it. *)
  let push t ~tid v ~on_reclaim =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let rec attempt () =
          let cur = A.get t.top in
          if not
               (A.compare_and_set t.top cur
                  (Some { value = v; next = cur; on_reclaim }))
          then begin
            Backoff.once backoff;
            attempt ()
          end
        in
        attempt ())

  let pop t ~tid =
    let backoff = Backoff.create () in
    Ebr.guard t.ebr ~tid (fun () ->
        let rec attempt () =
          match A.get t.top with
          | None -> None
          | Some n as cur ->
              if A.compare_and_set t.top cur n.next then begin
                Ebr.retire t.ebr ~tid n.on_reclaim;
                Some n.value
              end
              else begin
                Backoff.once backoff;
                attempt ()
              end
        in
        attempt ())

  let peek t ~tid =
    Ebr.guard t.ebr ~tid (fun () ->
        match A.get t.top with None -> None | Some n -> Some n.value)

  (* Drain deferred destructors (shutdown / tests). *)
  let flush t ~tid = Ebr.flush t.ebr ~tid

  let reclamation_stats t = Ebr.stats t.ebr
end
