(** Systematic schedule exploration with preemption bounding (CHESS-style
    stateless model checking) over the {!Sim_effects} instrumentation.

    A *scenario* is a generator returning fresh fiber bodies plus a final
    check; {!for_all} replays it under every schedule that deviates from
    a fair round-robin baseline by at most [max_preemptions] forced
    context switches placed before atomic accesses. The fair baseline
    makes exploration sound for blocking algorithms (spinning fibers
    always let their partners run).

    Scenario code uses {!Sim.Prim} exactly as simulator code does;
    {!Sim.spawn}/{!Sim.await_all} are not available inside scenarios. *)

type placement = { step : int; fiber : int }

type violation_kind =
  | Check_failed  (** the scenario's final check returned false *)
  | Fiber_raised of string  (** a fiber or the check raised *)
  | Livelock  (** a schedule exceeded the per-run step budget *)

type violation = {
  kind : violation_kind;
  schedule : placement list;  (** forced preemptions reproducing it *)
  explored : int;  (** schedules run up to and including the violation *)
}

type result =
  | Passed of { schedules : int; truncated : bool }
  | Failed of violation

exception Unsupported of string

val pp_result : Format.formatter -> result -> unit

(** [for_all scenario] explores schedules depth-first until a violation,
    exhaustion of the bounded space, or [max_schedules] runs ([truncated]
    reports whether any bound cut the space). [scenario ()] must build
    fresh state and return [(fiber_bodies, final_check)]; it runs once
    per schedule, so it must be deterministic. *)
val for_all :
  ?max_preemptions:int ->
  ?quantum:int ->
  ?max_schedules:int ->
  ?max_steps:int ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  result

type one_outcome = Ok_run of bool | Raised of string | Livelocked

(** Replay one specific schedule (e.g. a reported violation). *)
val replay :
  ?quantum:int ->
  ?max_steps:int ->
  schedule:placement list ->
  (unit -> (unit -> unit) list * (unit -> bool)) ->
  one_outcome
