(** Socket-granular cache-coherence cost model: every simulated atomic
    cell is a cache line with an exclusive owner and a socket-level
    sharer set; accesses are charged L1/shared/local/remote costs plus
    invalidation broadcasts. See the implementation header for the rules. *)

type kind = Read | Write | Rmw

type t

val create : Topology.t -> t

(** Allocate a fresh line, returning its id. The line starts exclusively
    owned by the creating core (allocation writes it). *)
val new_line : t -> core:int -> socket:int -> int

(** [access t ~core ~socket ~loc ~now kind] performs one access at virtual
    time [now] and returns the accessor's new virtual time. Misses and
    RMWs from non-owners queue on the line's availability (a hot line is a
    serial resource); hits are charged without occupying the line. *)
val access : t -> core:int -> socket:int -> loc:int -> now:int -> kind -> int

type traffic = { transfers : int; remote_transfers : int; invalidations : int }

(** Cumulative coherence traffic since [create]. *)
val traffic : t -> traffic
