(* The effect vocabulary shared by every scheduler that can execute
   simulated threads: {!Sim} (discrete-event, cost-charging) and
   {!Explore} (systematic schedule enumeration) both install handlers for
   these effects; {!Prim} is the {!Sec_prim.Prim_intf.S} implementation
   that performs them, so the same algorithm code runs under either. *)

type _ Effect.t +=
  | New_loc : int Effect.t
  | Access : int * Cache_model.kind -> unit Effect.t
  | Relax : int -> unit Effect.t
  | Yield : unit Effect.t
  | Now : int64 Effect.t
  | Rand_int : int -> int Effect.t
  | Rand_bits : int Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  | Await_all : unit Effect.t
  | Fiber_id : int Effect.t

module Prim : Sec_prim.Prim_intf.S = struct
  module Atomic = struct
    type 'a t = { loc : int; mutable v : 'a }

    (* Whichever scheduler handles these effects runs exactly one fiber at
       a time, so after the effect accounts for the access we can act on
       [v] directly. *)
    let make v = { loc = Effect.perform New_loc; v }
    let make_padded = make (* every simulated cell is its own line *)

    let get t =
      Effect.perform (Access (t.loc, Cache_model.Read));
      t.v

    let set t v =
      Effect.perform (Access (t.loc, Cache_model.Write));
      t.v <- v

    let exchange t v =
      Effect.perform (Access (t.loc, Cache_model.Rmw));
      let old = t.v in
      t.v <- v;
      old

    let compare_and_set t expected desired =
      (* A failing CAS still costs the line transfer. *)
      Effect.perform (Access (t.loc, Cache_model.Rmw));
      if t.v == expected then begin
        t.v <- desired;
        true
      end
      else false

    let fetch_and_add t n =
      Effect.perform (Access (t.loc, Cache_model.Rmw));
      let old = t.v in
      t.v <- old + n;
      old

    let incr t = ignore (fetch_and_add t 1)
    let decr t = ignore (fetch_and_add t (-1))
  end

  let cpu_relax () = Effect.perform (Relax 1)
  let relax n = Effect.perform (Relax n)
  let yield () = Effect.perform Yield
  let now_ns () = Effect.perform Now
  let rand_int n = Effect.perform (Rand_int n)
  let rand_bits () = Effect.perform Rand_bits
end
