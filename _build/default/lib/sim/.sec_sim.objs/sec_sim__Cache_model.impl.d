lib/sim/cache_model.ml: Array Topology
