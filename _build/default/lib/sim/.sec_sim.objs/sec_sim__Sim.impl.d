lib/sim/sim.ml: Array Cache_model Effect Int64 Sec_prim Sim_effects Topology
