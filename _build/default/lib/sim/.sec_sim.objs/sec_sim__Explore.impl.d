lib/sim/explore.ml: Array Effect Format Int64 List Printexc Printf Sec_prim Sim_effects String
