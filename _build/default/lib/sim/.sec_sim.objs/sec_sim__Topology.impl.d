lib/sim/topology.ml: Format Printf
