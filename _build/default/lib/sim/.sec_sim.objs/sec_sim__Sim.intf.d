lib/sim/sim.mli: Cache_model Sec_prim Topology
