lib/sim/sim_effects.ml: Cache_model Effect Sec_prim
