lib/sim/cache_model.mli: Topology
