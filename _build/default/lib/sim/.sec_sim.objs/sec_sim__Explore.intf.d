lib/sim/explore.mli: Format
