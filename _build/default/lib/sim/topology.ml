(* Machine models for the simulator: the three Intel NUMA boxes of the
   paper's evaluation, plus a small symmetric profile for tests.

   Each machine is sockets x physical cores x 2-way SMT. Hardware threads
   fill physical cores first (socket 0, then socket 1, ...) and only then
   double up as SMT siblings — so a sweep first pays the cross-socket
   cliff when it exceeds one socket's cores, and the upper half of the
   sweep adds cheap siblings that share their core's cache. This matches
   how the paper's unpinned runs behave on its machines (it reports
   pinning made no significant difference).

   Costs are in cycles and follow the usual x86 server hierarchy: an
   L1-resident access is a couple of cycles, pulling a line from another
   core on the same socket costs tens, crossing the UPI link costs
   hundreds, and an atomic RMW adds a fixed premium on top of wherever the
   line currently is. The absolute values are deliberately round — the
   reproduction targets the *shape* of the paper's figures, which depends
   on the ratios, not on exact latencies. *)

type costs = {
  l1_hit : int;  (** line already exclusive/shared in this core's cache *)
  shared_hit : int;  (** line shared within this socket (L2/L3-ish) *)
  local_transfer : int;  (** line owned by another core, same socket *)
  remote_transfer : int;  (** line owned by another socket *)
  rmw_extra : int;  (** premium for lock-prefixed operations *)
  invalidate_per_socket : int;
      (** per remote socket holding a copy when a write invalidates *)
  yield_quantum : int;  (** cycles a yielding fiber steps aside for *)
}

type t = {
  name : string;
  sockets : int;
  cores_per_socket : int;  (** physical cores *)
  smt : int;  (** hardware threads per core *)
  costs : costs;
}

let default_costs =
  {
    l1_hit = 2;
    shared_hit = 12;
    local_transfer = 60;
    remote_transfer = 180;
    rmw_extra = 20;
    invalidate_per_socket = 40;
    yield_quantum = 120;
  }

(* Intel Emerald Rapids: 2 NUMA nodes, 56 hardware threads total. *)
let emerald =
  {
    name = "emerald";
    sockets = 2;
    cores_per_socket = 14;
    smt = 2;
    costs = default_costs;
  }

(* Intel Ice Lake-SP: 4 NUMA nodes x 12 cores x 2 SMT = 96. *)
let icelake =
  {
    name = "icelake";
    sockets = 4;
    cores_per_socket = 12;
    smt = 2;
    costs = default_costs;
  }

(* Intel Sapphire Rapids: 8 NUMA nodes x 12 cores x 2 SMT = 192. *)
let sapphire =
  {
    name = "sapphire";
    sockets = 8;
    cores_per_socket = 12;
    smt = 2;
    costs = default_costs;
  }

(* Small profile for unit tests: cheap to simulate, still NUMA + SMT. *)
let testbox =
  {
    name = "testbox";
    sockets = 2;
    cores_per_socket = 2;
    smt = 2;
    costs = default_costs;
  }

let physical_cores t = t.sockets * t.cores_per_socket
let max_threads t = physical_cores t * t.smt

(* Hardware thread -> physical core: cores fill first, then SMT siblings
   wrap around onto the same cores. *)
let core_of t thread =
  if thread < 0 || thread >= max_threads t then
    invalid_arg
      (Printf.sprintf "topology %s supports %d hardware threads" t.name
         (max_threads t))
  else thread mod physical_cores t

let socket_of t thread = core_of t thread / t.cores_per_socket

let by_name = function
  | "emerald" -> emerald
  | "icelake" -> icelake
  | "sapphire" -> sapphire
  | "testbox" -> testbox
  | other -> invalid_arg ("unknown topology: " ^ other)

let pp ppf t =
  Format.fprintf ppf "%s (%d sockets x %d cores x %d SMT = %d HW threads)"
    t.name t.sockets t.cores_per_socket t.smt (max_threads t)
