(** Machine models for the simulator: sockets x physical cores x SMT, and
    the cycle costs of the cache hierarchy. Includes the three NUMA
    machines of the paper's evaluation. *)

type costs = {
  l1_hit : int;
  shared_hit : int;
  local_transfer : int;
  remote_transfer : int;
  rmw_extra : int;
  invalidate_per_socket : int;
  yield_quantum : int;
}

type t = {
  name : string;
  sockets : int;
  cores_per_socket : int;
  smt : int;
  costs : costs;
}

val default_costs : costs

(** Emerald Rapids: 2 sockets x 14 cores x 2 SMT (56 HW threads). *)
val emerald : t

(** Ice Lake-SP: 4 sockets x 12 cores x 2 SMT (96). *)
val icelake : t

(** Sapphire Rapids: 8 sockets x 12 cores x 2 SMT (192). *)
val sapphire : t

(** Small 2x2x2 profile for unit tests. *)
val testbox : t

val physical_cores : t -> int
val max_threads : t -> int

(** Physical core of hardware thread [i]: cores fill first (socket by
    socket), then SMT siblings wrap onto the same cores. Raises
    [Invalid_argument] past [max_threads]. *)
val core_of : t -> int -> int

val socket_of : t -> int -> int

(** Look up a profile by name ("emerald", "icelake", "sapphire",
    "testbox"); raises [Invalid_argument] otherwise. *)
val by_name : string -> t

val pp : Format.formatter -> t -> unit
