module Atomic = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let make_padded v = Padding.copy_as_padded (Stdlib.Atomic.make v)
  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set
  let exchange = Stdlib.Atomic.exchange
  let compare_and_set = Stdlib.Atomic.compare_and_set
  let fetch_and_add = Stdlib.Atomic.fetch_and_add
  let incr = Stdlib.Atomic.incr
  let decr = Stdlib.Atomic.decr
end

let cpu_relax = Domain.cpu_relax

let relax n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let yield = Thread.yield

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Per-domain generator, lazily seeded from the domain id and the clock so
   that concurrently created domains get distinct streams. *)
let rng_key =
  Domain.DLS.new_key (fun () ->
      let id = (Domain.self () :> int) in
      Rng.create
        (Int64.add (Int64.of_int (0x51EC + (id * 0x9E37))) (now_ns ())))

let seed_rng seed = Rng.create seed |> Domain.DLS.set rng_key
let rand_int bound = Rng.int (Domain.DLS.get rng_key) bound
let rand_bits () = Rng.bits (Domain.DLS.get rng_key)
