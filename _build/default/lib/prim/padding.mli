(** Cache-line padding for heap blocks.

    Contended atomic cells that live next to each other on the heap share a
    cache line, so a write to one invalidates readers of the other (false
    sharing). [copy_as_padded] re-allocates a block inside a block of at
    least one cache line, which is the same technique the multicore-magic
    library uses. *)

(** Number of words a padded block occupies. At least 16 (128 bytes on a
    64-bit machine, i.e. two cache lines, covering adjacent-line
    prefetching). *)
val padded_words : int

(** [copy_as_padded v] returns a copy of [v] whose heap block is padded to
    [padded_words] words. Immediate values and blocks that cannot be safely
    copied (custom/no-scan tags, or blocks already at least that large) are
    returned unchanged.

    The copy has extra fields (all [()]), so it must only be used through
    operations that address fields by position — e.g. [Atomic.t], records —
    and never through [Obj.size], structural equality of the whole block,
    or marshalling. *)
val copy_as_padded : 'a -> 'a
