(* Generation-counting barrier: no per-thread state, safe for repeated
   phases. The last arriver of a generation resets the count and bumps the
   generation; everyone else spins on the generation change. *)

module Make (P : Prim_intf.S) = struct
  module B = Backoff.Make (P)

  type t = {
    parties : int;
    count : int P.Atomic.t;
    generation : int P.Atomic.t;
  }

  let create parties =
    assert (parties > 0);
    {
      parties;
      count = P.Atomic.make_padded 0;
      generation = P.Atomic.make_padded 0;
    }

  let wait t =
    let gen = P.Atomic.get t.generation in
    if P.Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
      P.Atomic.set t.count 0;
      P.Atomic.incr t.generation
    end
    else B.spin_while (fun () -> P.Atomic.get t.generation = gen)
end
