(** Contention-free statistics counters, striped across cache lines. *)

module Make (_ : Prim_intf.S) : sig
  type t

  (** [create ~stripes ()] — more stripes, less cross-thread interference;
      threads map to stripes by [tid mod stripes]. *)
  val create : ?stripes:int -> unit -> t

  val add : t -> tid:int -> int -> unit
  val incr : t -> tid:int -> unit

  (** Sum of all stripes; exact once writers are quiescent. *)
  val get : t -> int

  val reset : t -> unit
end
