type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  assert (bound > 0);
  if bound = 1 then 0
  else
    (* Rejection-free: a 60-bit draw modulo [bound] has negligible bias for
       the bounds used here (all far below 2^30). *)
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 4) in
    r mod bound

let split t = { state = next_int64 t }
