(** SplitMix64 pseudo-random number generator.

    Each thread owns its own generator, so drawing random numbers never
    touches shared state — important because benchmark loops draw one
    number per operation and a shared [Random] state would itself become a
    contention hot spot. Also used by the simulator for deterministic,
    seed-reproducible schedules. *)

type t

(** [create seed] builds a generator. Distinct seeds give independent
    streams (SplitMix64's output function decorrelates nearby seeds). *)
val create : int64 -> t

(** Copy the generator state (streams then diverge independently). *)
val copy : t -> t

(** Next 64 pseudo-random bits. *)
val next_int64 : t -> int64

(** [bits t] is 30 uniform bits as a non-negative [int]. *)
val bits : t -> int

(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)
val int : t -> int -> int

(** [split t] derives a new, statistically independent generator. *)
val split : t -> t
