lib/prim/barrier.ml: Backoff Prim_intf
