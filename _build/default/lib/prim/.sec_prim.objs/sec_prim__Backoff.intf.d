lib/prim/backoff.mli: Prim_intf
