lib/prim/rng.mli:
