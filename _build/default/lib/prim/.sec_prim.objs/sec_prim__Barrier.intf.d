lib/prim/barrier.mli: Prim_intf
