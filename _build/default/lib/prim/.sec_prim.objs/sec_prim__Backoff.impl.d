lib/prim/backoff.ml: Prim_intf
