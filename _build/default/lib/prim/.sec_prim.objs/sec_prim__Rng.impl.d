lib/prim/rng.ml: Int64
