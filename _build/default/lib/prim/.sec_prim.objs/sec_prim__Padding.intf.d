lib/prim/padding.mli:
