lib/prim/prim_intf.ml:
