lib/prim/native.ml: Domain Int64 Padding Rng Stdlib Thread Unix
