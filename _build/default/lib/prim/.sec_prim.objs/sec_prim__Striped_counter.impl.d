lib/prim/striped_counter.ml: Array Prim_intf
