lib/prim/padding.ml: Obj
