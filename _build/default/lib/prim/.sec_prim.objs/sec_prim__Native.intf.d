lib/prim/native.mli: Prim_intf
