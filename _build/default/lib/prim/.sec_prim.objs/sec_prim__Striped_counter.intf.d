lib/prim/striped_counter.mli: Prim_intf
