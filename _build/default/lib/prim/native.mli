(** Native implementation of {!Prim_intf.S}: real shared memory via
    [Stdlib.Atomic], running on [Domain]s.

    Spin loops must escalate to {!yield} (see {!Backoff}); this host may
    have fewer cores than domains, and a non-yielding spinner would burn
    its whole scheduling quantum while the thread it waits for is
    descheduled. *)

include Prim_intf.S

(** Re-seed the calling thread's random generator (tests use this for
    reproducibility). *)
val seed_rng : int64 -> unit
