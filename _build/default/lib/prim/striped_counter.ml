(* Statistics counter striped across cache lines: increments land on the
   caller's own stripe, so instrumenting a hot path does not create a new
   contention point. Reads sum all stripes and are approximate while
   writers are active — fine for statistics. *)

module Make (P : Prim_intf.S) = struct
  type t = { stripes : int P.Atomic.t array }

  let create ?(stripes = 16) () =
    assert (stripes > 0);
    { stripes = Array.init stripes (fun _ -> P.Atomic.make_padded 0) }

  let stripe_of t tid = Array.unsafe_get t.stripes (tid mod Array.length t.stripes)
  let add t ~tid n = ignore (P.Atomic.fetch_and_add (stripe_of t tid) n)
  let incr t ~tid = add t ~tid 1

  let get t =
    Array.fold_left (fun acc c -> acc + P.Atomic.get c) 0 t.stripes

  let reset t = Array.iter (fun c -> P.Atomic.set c 0) t.stripes
end
