(** Randomised exponential backoff and escalating spin-wait loops.

    Functorised over {!Prim_intf.S} so the same policy drives both the
    native runtime and the simulator (where [relax n] is a single cheap
    scheduling event, keeping long backoffs inexpensive to simulate). *)

module Make (_ : Prim_intf.S) : sig
  type t

  (** [create ~min_wait ~max_wait ()] — waits are in relax units, doubling
      from [min_wait] up to [max_wait] on each {!once}. *)
  val create : ?min_wait:int -> ?max_wait:int -> unit -> t

  (** Back to the minimum wait (call after a successful operation). *)
  val reset : t -> unit

  (** Wait a random duration up to the current bound, then double it. *)
  val once : t -> unit

  (** [spin_until p] returns once [p ()] is true. Busy-waits briefly, then
      escalates to yielding so the awaited thread can run even on an
      oversubscribed machine. *)
  val spin_until : (unit -> bool) -> unit

  (** [spin_while p] returns once [p ()] is false. *)
  val spin_while : (unit -> bool) -> unit
end
