(** Reusable spinning barrier for synchronising benchmark phases. *)

module Make (_ : Prim_intf.S) : sig
  type t

  (** [create parties] — a barrier that [parties] threads wait on. *)
  val create : int -> t

  (** Block (spin) until all parties have arrived; reusable across
      generations. *)
  val wait : t -> unit
end
