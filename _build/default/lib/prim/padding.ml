let padded_words = 16

(* Copying a block into a fresh, larger block is safe for blocks whose
   fields are all scannable values and whose consumers address fields by
   position only. [Atomic.t] qualifies: it is a single mutable field at
   position 0 and all atomic primitives operate on field 0. *)
let copy_as_padded (type a) (v : a) : a =
  let r = Obj.repr v in
  if Obj.is_int r then v
  else
    let tag = Obj.tag r in
    let size = Obj.size r in
    if tag >= Obj.no_scan_tag || tag = Obj.object_tag || size >= padded_words
    then v
    else begin
      let b = Obj.new_block tag padded_words in
      for i = 0 to size - 1 do
        Obj.set_field b i (Obj.field r i)
      done;
      (* [Obj.new_block] initialises the remaining fields to [()], which is
         a valid immediate, so the GC never sees an uninitialised word. *)
      Obj.obj b
    end
