(* Exponential backoff and spin-wait helpers, parameterised over the
   execution substrate so the same escalation policy runs natively and in
   the simulator. *)

module Make (P : Prim_intf.S) = struct
  type t = { min_wait : int; max_wait : int; mutable current : int }

  let create ?(min_wait = 16) ?(max_wait = 4096) () =
    assert (0 < min_wait && min_wait <= max_wait);
    { min_wait; max_wait; current = min_wait }

  let reset t = t.current <- t.min_wait

  (* Randomising the wait desynchronises threads that failed the same CAS
     at the same time, which would otherwise collide again in lockstep. *)
  let once t =
    P.relax (1 + P.rand_int t.current);
    if t.current < t.max_wait then t.current <- t.current * 2

  (* Spin until [condition ()] holds. The first [spin_limit] probes pause
     briefly; after that each probe also yields, so a waiter never starves
     the thread it is waiting for when cores are oversubscribed. *)
  let spin_limit = 128

  let spin_until condition =
    if not (condition ()) then begin
      (* Cap the probe gap: most waits here are short (a freeze window, a
         combiner's CAS), and a waiter that naps 1k cycles between probes
         reacts a full window late. *)
      let rec go n wait =
        if not (condition ()) then
          if n < spin_limit then begin
            P.relax wait;
            go (n + 1) (if wait < 256 then wait * 2 else wait)
          end
          else begin
            P.yield ();
            P.relax 64;
            go n wait
          end
      in
      go 0 4
    end

  (* Spin while [condition ()] holds; dual of [spin_until]. *)
  let spin_while condition = spin_until (fun () -> not (condition ()))
end
