(* The experiment registry: one entry per figure and table of the paper's
   evaluation (see DESIGN.md for the index). Each experiment prints its
   series tables and optionally dumps CSVs.

   Paper-scale thread counts run on the simulator (this host has a single
   core); pass [native = true] to append small native-domain sweeps as a
   sanity check. *)

type opts = {
  scale : float; (* duration multiplier; 1.0 ~ a few seconds per figure *)
  csv_dir : string option;
  native : bool;
  seed : int;
}

let default_opts = { scale = 1.0; csv_dir = None; native = false; seed = 1 }

type t = { id : string; title : string; run : opts -> unit }

(* ------------------------------------------------------------------ *)
(* Sweep helpers                                                        *)

let base_cycles = 300_000
let duration_cycles opts = max 10_000 (int_of_float (float_of_int base_cycles *. opts.scale))
let native_duration opts = 0.25 *. opts.scale

let threads_for (topo : Sec_sim.Topology.t) =
  match topo.Sec_sim.Topology.name with
  | "emerald" -> [ 1; 2; 4; 8; 16; 28; 40; 56 ]
  | "icelake" -> [ 1; 2; 4; 8; 16; 32; 48; 64; 96 ]
  | "sapphire" -> [ 1; 2; 4; 8; 16; 32; 64; 96; 128; 192 ]
  | _ -> [ 1; 2; 4; 8 ]

(* Pop-only sweeps measure sustained pop pressure, so the prefill must
   outlast the window for every algorithm; otherwise the fast ones drain
   the stack and the figure degenerates into empty-pop throughput. *)
let prefill_for mix =
  if mix.Workload.pop_pct = 100 then 50_000 else Sim_runner.default_prefill

let sim_sweep opts ~topology ~mix ~entries ~tag ~title =
  let threads = threads_for topology in
  let prefill = prefill_for mix in
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let values =
          List.map
            (fun n ->
              (Sim_runner.run e.Registry.maker ~topology ~threads:n
                 ~duration_cycles:(duration_cycles opts) ~mix ~prefill
                 ~seed:opts.seed ())
                .Measurement.mops)
            threads
        in
        (e.Registry.name, Array.of_list values))
      entries
  in
  Report.series
    ~title:(Printf.sprintf "%s [%s, simulated %s]" title mix.Workload.label
              topology.Sec_sim.Topology.name)
    ~columns:threads ~rows;
  Option.iter
    (fun dir ->
      Report.csv_of_series ~dir
        ~file:(Printf.sprintf "%s_%s.csv" tag mix.Workload.label)
        ~columns:threads ~rows)
    opts.csv_dir

let native_sweep opts ~mix ~entries ~tag ~title =
  let threads = [ 1; 2; 4 ] in
  (* Native cores pop millions of times per second; size the pop-only
     prefill to keep the stack non-empty for the whole wall-clock window. *)
  let prefill =
    if mix.Workload.pop_pct = 100 then 2_000_000 else Native_runner.default_prefill
  in
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let values =
          List.map
            (fun n ->
              (Native_runner.run e.Registry.maker ~threads:n
                 ~duration:(native_duration opts) ~mix ~prefill ~seed:opts.seed ())
                .Measurement.mops)
            threads
        in
        (e.Registry.name, Array.of_list values))
      entries
  in
  Report.series
    ~title:(Printf.sprintf "%s [%s, native domains]" title mix.Workload.label)
    ~columns:threads ~rows;
  Option.iter
    (fun dir ->
      Report.csv_of_series ~dir
        ~file:(Printf.sprintf "%s_%s_native.csv" tag mix.Workload.label)
        ~columns:threads ~rows)
    opts.csv_dir

(* Throughput figures: update mixes (Figures 2/5/9). *)
let throughput_figure ~id ~topology ~paper_ref =
  {
    id;
    title = Printf.sprintf "%s: throughput, 100%%/50%%/10%% updates on %s"
              paper_ref topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        List.iter
          (fun mix ->
            sim_sweep opts ~topology ~mix ~entries:Registry.paper_set ~tag:id
              ~title:paper_ref;
            if opts.native then
              native_sweep opts ~mix ~entries:Registry.paper_set ~tag:id
                ~title:paper_ref)
          [ Workload.update_heavy; Workload.mixed; Workload.read_heavy ]);
  }

(* Push-only / pop-only figures (Figures 3/6/10). *)
let homogeneous_figure ~id ~topology ~paper_ref =
  {
    id;
    title = Printf.sprintf "%s: push-only and pop-only on %s" paper_ref
              topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        List.iter
          (fun mix ->
            sim_sweep opts ~topology ~mix ~entries:Registry.paper_set ~tag:id
              ~title:paper_ref;
            if opts.native then
              native_sweep opts ~mix ~entries:Registry.paper_set ~tag:id
                ~title:paper_ref)
          [ Workload.push_only; Workload.pop_only ]);
  }

(* Aggregator self-comparison (Figures 4/7/8/11/12). *)
let aggregator_figure ~id ~topology ~paper_ref ~mixes =
  {
    id;
    title = Printf.sprintf "%s: SEC with 1..5 aggregators on %s" paper_ref
              topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        List.iter
          (fun mix ->
            sim_sweep opts ~topology ~mix ~entries:Registry.sec_aggregator_sweep
              ~tag:id ~title:paper_ref)
          mixes);
  }

(* Batching/elimination/combining degrees (Tables 1/2/3). The paper
   reports averages across thread counts. *)
let degrees_table ~id ~topology ~paper_ref =
  {
    id;
    title = Printf.sprintf "%s: SEC batching/elimination/combining on %s"
              paper_ref topology.Sec_sim.Topology.name;
    run =
      (fun opts ->
        let thread_points =
          List.filter (fun n -> n >= 8) (threads_for topology)
        in
        let mixes = [ Workload.update_heavy; Workload.mixed; Workload.read_heavy ] in
        let per_mix =
          List.map
            (fun mix ->
              let snapshots =
                List.map
                  (fun n ->
                    Sim_runner.run_sec_stats ~config:Sec_core.Config.default
                      ~topology ~threads:n
                      ~duration_cycles:(duration_cycles opts) ~mix
                      ~seed:opts.seed ())
                  thread_points
              in
              let avg f =
                List.fold_left (fun acc s -> acc +. f s) 0. snapshots
                /. float_of_int (List.length snapshots)
              in
              ( avg Sec_core.Sec_stats.batching_degree,
                avg Sec_core.Sec_stats.pct_eliminated,
                avg Sec_core.Sec_stats.pct_combined ))
            mixes
        in
        let columns = List.map (fun m -> m.Workload.label) mixes in
        let row f = List.map (fun v -> Printf.sprintf "%.1f" (f v)) per_mix in
        let rows =
          [
            ("Batching Degree", row (fun (d, _, _) -> d));
            ("%Elimination", row (fun (_, e, _) -> e));
            ("%Combining", row (fun (_, _, c) -> c));
          ]
        in
        Report.keyed
          ~title:(Printf.sprintf "%s [simulated %s, averaged over %s threads]"
                    paper_ref topology.Sec_sim.Topology.name
                    (String.concat "," (List.map string_of_int thread_points)))
          ~columns ~rows;
        Option.iter
          (fun dir ->
            Report.csv ~dir ~file:(id ^ ".csv")
              ~header:("metric" :: columns)
              ~rows:(List.map (fun (name, vs) -> name :: vs) rows))
          opts.csv_dir);
  }

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md)                   *)

let ablation_backoff =
  {
    id = "ablation-backoff";
    title =
      "Ablation: SEC freezer wait budget (0 / 512 / 1024 / 2048 / 8192 relax \
       units)";
    run =
      (fun opts ->
        let entries =
          List.map
            (fun b ->
              Registry.sec_with ~freeze_backoff:b ~aggregators:2
                ~label:(Printf.sprintf "SEC_bo%d" b) ())
            [ 0; 512; 1024; 2048; 8192 ]
        in
        List.iter
          (fun mix ->
            sim_sweep opts ~topology:Sec_sim.Topology.emerald ~mix ~entries
              ~tag:"ablation_backoff" ~title:"Freezer backoff ablation")
          [ Workload.update_heavy; Workload.push_only ]);
  }

let ablation_funnel =
  let module SP = Sec_sim.Sim.Prim in
  let faa_throughput opts ~threads ~variant =
    let duration = duration_cycles opts in
    let ops, _ =
      Sec_sim.Sim.run ~seed:opts.seed ~topology:Sec_sim.Topology.emerald
        (fun () ->
          let module Faa = Sec_funnel.Agg_faa.Make (SP) in
          let shards = match variant with `Funnel s -> s | `Central -> 1 in
          let funnel = Faa.create ~shards () in
          let central = SP.Atomic.make 0 in
          let counts = Array.make threads 0 in
          let deadline = Int64.add (SP.now_ns ()) (Int64.of_int duration) in
          for _ = 1 to threads do
            Sec_sim.Sim.spawn (fun () ->
                let tid = Sec_sim.Sim.fiber_id () in
                let ops = ref 0 in
                while Int64.compare (SP.now_ns ()) deadline < 0 do
                  (match variant with
                  | `Central -> ignore (SP.Atomic.fetch_and_add central 1)
                  | `Funnel _ -> ignore (Faa.fetch_and_add funnel ~tid 1));
                  incr ops
                done;
                counts.(tid) <- !ops)
          done;
          Sec_sim.Sim.await_all ();
          Array.fold_left ( + ) 0 counts)
    in
    (Measurement.of_simulated ~algorithm:"faa" ~threads ~ops ~cycles:duration)
      .Measurement.mops
  in
  {
    id = "ablation-funnel";
    title = "Ablation: sharded (aggregating-funnel style) vs central fetch&add";
    run =
      (fun opts ->
        let threads = threads_for Sec_sim.Topology.emerald in
        let variants =
          [
            ("central FAA", `Central);
            ("funnel x2", `Funnel 2);
            ("funnel x4", `Funnel 4);
          ]
        in
        let rows =
          List.map
            (fun (name, v) ->
              ( name,
                Array.of_list
                  (List.map
                     (fun n -> faa_throughput opts ~threads:n ~variant:v)
                     threads) ))
            variants
        in
        Report.series
          ~title:"Fetch&add throughput (Mops/s) [simulated emerald]"
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"ablation_funnel.csv"
              ~columns:threads ~rows)
          opts.csv_dir);
  }

let ablation_hsynch =
  {
    id = "ablation-hsynch";
    title =
      "Ablation: SEC vs hierarchical combining (H-Synch) vs flat CC-Synch";
    run =
      (fun opts ->
        let entries = [ Registry.sec; Registry.hsynch; Registry.cc ] in
        List.iter
          (fun mix ->
            sim_sweep opts ~topology:Sec_sim.Topology.sapphire ~mix ~entries
              ~tag:"ablation_hsynch" ~title:"NUMA-aware combining ablation")
          [ Workload.update_heavy ]);
  }

let extension_pool =
  let module SP = Sec_sim.Sim.Prim in
  let module Pool = Sec_core.Sec_pool.Make (SP) in
  (* The pool is push/pop only, so it gets a dedicated runner; SEC and TRB
     run the same 50/50 workload through the standard one. *)
  let pool_throughput opts ~threads ~aggregators =
    let duration = duration_cycles opts in
    let ops, _ =
      Sec_sim.Sim.run ~seed:opts.seed ~topology:Sec_sim.Topology.emerald
        (fun () ->
          let pool = Pool.create ~aggregators ~max_threads:threads () in
          for i = 1 to Sim_runner.default_prefill do
            Pool.push pool ~tid:0 i
          done;
          let counts = Array.make threads 0 in
          let deadline = Int64.add (SP.now_ns ()) (Int64.of_int duration) in
          for _ = 1 to threads do
            Sec_sim.Sim.spawn (fun () ->
                let tid = Sec_sim.Sim.fiber_id () in
                let ops = ref 0 in
                while Int64.compare (SP.now_ns ()) deadline < 0 do
                  SP.relax Sim_runner.loop_overhead;
                  if SP.rand_int 2 = 0 then Pool.push pool ~tid (SP.rand_int 100)
                  else ignore (Pool.pop pool ~tid);
                  incr ops
                done;
                counts.(tid) <- !ops)
          done;
          Sec_sim.Sim.await_all ();
          Array.fold_left ( + ) 0 counts)
    in
    (Measurement.of_simulated ~algorithm:"pool" ~threads ~ops ~cycles:duration)
      .Measurement.mops
  in
  {
    id = "extension-pool";
    title =
      "Extension: SEC-style pool (sharded backing stores) vs SEC stack vs TRB";
    run =
      (fun opts ->
        let threads = threads_for Sec_sim.Topology.emerald in
        let stack_row (e : Registry.entry) =
          ( e.Registry.name,
            Array.of_list
              (List.map
                 (fun n ->
                   (Sim_runner.run e.Registry.maker
                      ~topology:Sec_sim.Topology.emerald ~threads:n
                      ~duration_cycles:(duration_cycles opts)
                      ~mix:Workload.update_heavy ~seed:opts.seed ())
                     .Measurement.mops)
                 threads) )
        in
        let pool_row label aggregators =
          ( label,
            Array.of_list
              (List.map
                 (fun n -> pool_throughput opts ~threads:n ~aggregators)
                 threads) )
        in
        let rows =
          [
            pool_row "SEC-pool x2" 2;
            pool_row "SEC-pool x4" 4;
            stack_row Registry.sec;
            stack_row Registry.treiber;
          ]
        in
        Report.series
          ~title:"Pool extension, 100% updates (Mops/s) [simulated emerald]"
          ~columns:threads ~rows;
        Option.iter
          (fun dir ->
            Report.csv_of_series ~dir ~file:"extension_pool.csv"
              ~columns:threads ~rows)
          opts.csv_dir);
  }

let variance_check =
  {
    id = "variance";
    title =
      "Supporting: seed-to-seed spread at 28 threads (paper: <5% over 5 runs)";
    run =
      (fun opts ->
        let seeds = List.init 5 (fun i -> opts.seed + i) in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              let v =
                Variance.of_sim_runs e ~topology:Sec_sim.Topology.emerald
                  ~threads:28 ~duration_cycles:(duration_cycles opts)
                  ~mix:Workload.update_heavy ~seeds
              in
              ( e.Registry.name,
                [
                  Printf.sprintf "%.2f" v.Variance.mean;
                  Printf.sprintf "%.2f" v.Variance.min;
                  Printf.sprintf "%.2f" v.Variance.max;
                  Printf.sprintf "%.1f%%" v.Variance.relative_spread;
                ] ))
            Registry.paper_set
        in
        Report.keyed
          ~title:
            "Throughput over 5 seeds [100%upd, 28 threads, simulated emerald]"
          ~columns:[ "mean"; "min"; "max"; "spread" ]
          ~rows;
        Option.iter
          (fun dir ->
            Report.csv ~dir ~file:"variance.csv"
              ~header:[ "algorithm"; "mean"; "min"; "max"; "spread" ]
              ~rows:(List.map (fun (n, vs) -> n :: vs) rows))
          opts.csv_dir);
  }

let latency_distribution =
  {
    id = "latency-dist";
    title =
      "Supporting: per-operation latency distribution at 28 threads (emerald)";
    run =
      (fun opts ->
        let threads = 28 in
        let rows =
          List.map
            (fun (e : Registry.entry) ->
              let h =
                Sim_runner.run_latency_profile e.Registry.maker
                  ~topology:Sec_sim.Topology.emerald ~threads
                  ~duration_cycles:(duration_cycles opts)
                  ~mix:Workload.update_heavy ~seed:opts.seed ()
              in
              ( e.Registry.name,
                [
                  Printf.sprintf "%.0f" (Latency.mean h);
                  string_of_int (Latency.percentile h 50.);
                  string_of_int (Latency.percentile h 90.);
                  string_of_int (Latency.percentile h 99.);
                  string_of_int (Latency.percentile h 99.9);
                ] ))
            Registry.paper_set
        in
        Report.keyed
          ~title:
            (Printf.sprintf
               "Per-op latency in cycles [100%%upd, %d threads, simulated \
                emerald]"
               threads)
          ~columns:[ "mean"; "p50"; "p90"; "p99"; "p99.9" ]
          ~rows;
        Option.iter
          (fun dir ->
            Report.csv ~dir ~file:"latency_dist.csv"
              ~header:[ "algorithm"; "mean"; "p50"; "p90"; "p99"; "p99.9" ]
              ~rows:(List.map (fun (n, vs) -> n :: vs) rows))
          opts.csv_dir);
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let all =
  [
    throughput_figure ~id:"fig2" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 2";
    homogeneous_figure ~id:"fig3" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 3";
    aggregator_figure ~id:"fig4" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Figure 4"
      ~mixes:
        [
          Workload.update_heavy;
          Workload.mixed;
          Workload.read_heavy;
          Workload.push_only;
        ];
    degrees_table ~id:"table1" ~topology:Sec_sim.Topology.emerald
      ~paper_ref:"Table 1";
    throughput_figure ~id:"fig5" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 5";
    homogeneous_figure ~id:"fig6" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 6";
    aggregator_figure ~id:"fig7" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 7"
      ~mixes:[ Workload.update_heavy; Workload.mixed; Workload.read_heavy ];
    aggregator_figure ~id:"fig8" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Figure 8" ~mixes:[ Workload.push_only; Workload.pop_only ];
    degrees_table ~id:"table2" ~topology:Sec_sim.Topology.icelake
      ~paper_ref:"Table 2";
    throughput_figure ~id:"fig9" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 9";
    homogeneous_figure ~id:"fig10" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 10";
    aggregator_figure ~id:"fig11" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 11"
      ~mixes:
        [
          Workload.update_heavy;
          Workload.mixed;
          Workload.read_heavy;
          Workload.push_only;
        ];
    aggregator_figure ~id:"fig12" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Figure 12" ~mixes:[ Workload.push_only; Workload.pop_only ];
    degrees_table ~id:"table3" ~topology:Sec_sim.Topology.sapphire
      ~paper_ref:"Table 3";
    ablation_backoff;
    ablation_funnel;
    ablation_hsynch;
    extension_pool;
    latency_distribution;
    variance_check;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
