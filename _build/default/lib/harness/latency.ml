(* Log-scale latency histograms: power-of-two buckets, cheap enough to
   update on every operation, mergeable across threads. Used by the
   latency-distribution experiment to compare tail behaviour of the
   blocking SEC against the lock-free baselines. *)

type t = { buckets : int array; mutable count : int; mutable sum : float }

let bucket_count = 48

let create () = { buckets = Array.make bucket_count 0; count = 0; sum = 0. }

(* Bucket [i] covers (2^(i-1), 2^i]; bucket 0 covers values <= 1. So the
   index of [v] is the bit length of [v - 1]. *)
let bucket_of v =
  if v <= 1 then 0
  else
    let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
    min (bucket_count - 1) (bits 0 (v - 1))

let add t v =
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int v

let merge a b =
  let m = create () in
  Array.iteri (fun i v -> m.buckets.(i) <- v + b.buckets.(i)) a.buckets;
  m.count <- a.count + b.count;
  m.sum <- a.sum +. b.sum;
  m

let count t = t.count
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(* Upper bound of bucket [i]: 2^i (bucket 0 holds values <= 1). *)
let bucket_upper i = if i = 0 then 1 else 1 lsl i

(* [percentile t p] is an upper bound on the p-th percentile (the upper
   edge of the bucket containing it). *)
let percentile t p =
  assert (0. <= p && p <= 100.);
  if t.count = 0 then 0
  else begin
    let target = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
    let target = max 1 target in
    let rec walk i seen =
      if i >= bucket_count then bucket_upper (bucket_count - 1)
      else
        let seen = seen + t.buckets.(i) in
        if seen >= target then bucket_upper i else walk (i + 1) seen
    in
    walk 0 0
  end
