(** A single throughput measurement (one cell of a figure). *)

type t = {
  algorithm : string;
  threads : int;
  ops : int;
  elapsed : float;  (** seconds (simulated cycles are scaled at 3 GHz) *)
  mops : float;  (** millions of operations per second *)
}

(** Clock frequency used to put simulated cycle counts on the same scale
    as native seconds. Only relative comparisons are meaningful. *)
val assumed_ghz : float

val of_native : algorithm:string -> threads:int -> ops:int -> elapsed:float -> t
val of_simulated : algorithm:string -> threads:int -> ops:int -> cycles:int -> t
