(** Operation mixes of the paper's methodology (Section 6). *)

type mix = { push_pct : int; pop_pct : int; peek_pct : int; label : string }

(** [make ~push ~pop ~peek label] — percentages must sum to 100. *)
val make : push:int -> pop:int -> peek:int -> string -> mix

(** 50% push / 50% pop ("100% updates"). *)
val update_heavy : mix

(** 25% push / 25% pop / 50% peek ("50% updates"). *)
val mixed : mix

(** 5% push / 5% pop / 90% peek ("10% updates"). *)
val read_heavy : mix

val push_only : mix
val pop_only : mix

val all : mix list

(** Look up a preset by its label ("100%upd", "push-only", ...). *)
val by_name : string -> mix

type op = Push | Pop | Peek

(** [pick mix r] maps a uniform draw [r] in [0, 100) to an operation. *)
val pick : mix -> int -> op
