(* A single throughput measurement. *)

type t = {
  algorithm : string;
  threads : int;
  ops : int;
  elapsed : float; (* seconds (native) or seconds-at-3GHz (simulated) *)
  mops : float; (* millions of operations per second *)
}

(* The simulator counts cycles; we report as if the machine ran at 3 GHz
   (the paper's Sapphire clock) so simulated and native numbers share a
   scale. Only relative comparisons are meaningful either way. *)
let assumed_ghz = 3.0

let of_native ~algorithm ~threads ~ops ~elapsed =
  { algorithm; threads; ops; elapsed; mops = float_of_int ops /. elapsed /. 1e6 }

let of_simulated ~algorithm ~threads ~ops ~cycles =
  let elapsed = float_of_int cycles /. (assumed_ghz *. 1e9) in
  { algorithm; threads; ops; elapsed; mops = float_of_int ops /. elapsed /. 1e6 }
