(** Timed throughput runs on real domains, following the paper's
    methodology (prefilled stack, random operation mix, fixed duration).
    Limited by this host's core count; paper-scale runs use
    {!Sim_runner}. *)

val default_prefill : int
val default_value_range : int

(** [run maker ~threads ~duration ~mix ()] spawns [threads] domains that
    hammer a fresh stack for [duration] seconds and reports throughput. *)
val run :
  (module Registry.MAKER) ->
  threads:int ->
  duration:float ->
  mix:Workload.mix ->
  ?prefill:int ->
  ?value_range:int ->
  ?seed:int ->
  unit ->
  Measurement.t
