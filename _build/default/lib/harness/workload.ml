(* Operation mixes of the paper's methodology (Section 6): threads draw
   push/pop/peek operations at random with fixed percentages. *)

type mix = { push_pct : int; pop_pct : int; peek_pct : int; label : string }

let make ~push ~pop ~peek label =
  assert (push + pop + peek = 100);
  { push_pct = push; pop_pct = pop; peek_pct = peek; label }

(* 100% updates: 50% push, 50% pop. *)
let update_heavy = make ~push:50 ~pop:50 ~peek:0 "100%upd"

(* 50% updates: 25% push, 25% pop, 50% peek. *)
let mixed = make ~push:25 ~pop:25 ~peek:50 "50%upd"

(* 10% updates: 5% push, 5% pop, 90% peek. *)
let read_heavy = make ~push:5 ~pop:5 ~peek:90 "10%upd"

let push_only = make ~push:100 ~pop:0 ~peek:0 "push-only"
let pop_only = make ~push:0 ~pop:100 ~peek:0 "pop-only"

let all = [ update_heavy; mixed; read_heavy; push_only; pop_only ]

let by_name name =
  match List.find_opt (fun m -> m.label = name) all with
  | Some m -> m
  | None -> invalid_arg ("unknown workload: " ^ name)

type op = Push | Pop | Peek

(* [pick mix r] maps a uniform draw [r] in [0, 100) to an operation. *)
let pick mix r =
  if r < mix.push_pct then Push
  else if r < mix.push_pct + mix.pop_pct then Pop
  else Peek
