(** Seed-to-seed spread of simulated throughput — the reproducibility
    check mirroring the paper's "averaged over five runs, variance below
    5%" methodology. *)

type t = {
  mean : float;
  min : float;
  max : float;
  relative_spread : float;  (** (max - min) / mean, in percent *)
  samples : int;
}

(** Raises [Invalid_argument] on an empty list. *)
val of_samples : float list -> t

val of_sim_runs :
  Registry.entry ->
  topology:Sec_sim.Topology.t ->
  threads:int ->
  duration_cycles:int ->
  mix:Workload.mix ->
  seeds:int list ->
  t

val pp : Format.formatter -> t -> unit
