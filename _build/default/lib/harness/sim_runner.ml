(* Timed throughput runs inside the discrete-event simulator: the same
   methodology as {!Native_runner} but in virtual time, at the paper's
   56/96/192 hardware-thread scales. Deterministic for a fixed seed, so a
   single run per data point suffices. *)

module SP = Sec_sim.Sim.Prim

let default_prefill = 1_000
let default_value_range = 100_000

(* Per-operation benchmark-loop overhead (random draw, branch, counter) —
   keeps trivial operations like peek from looking infinitely cheap. *)
let loop_overhead = 10

(* Small seeded timing noise for benchmark runs. A perfectly deterministic
   simulation can sit on pathological lockstep fixed points (e.g. a thread
   whose announcement misses every batch window in perfect rhythm); real
   machines never do. The jitter is identical for every algorithm and the
   run remains reproducible per seed. *)
let bench_jitter = 2

let run (module Maker : Registry.MAKER) ~topology ~threads ~duration_cycles
    ~mix ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  let module S = Maker (SP) in
  let ops, _stats =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        let stack = S.create ~max_threads:(max threads 1) () in
        for i = 1 to prefill do
          S.push stack ~tid:0 (i mod value_range)
        done;
        let counts = Array.make threads 0 in
        let deadline = Int64.add (SP.now_ns ()) (Int64.of_int duration_cycles) in
        for _ = 1 to threads do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              let ops = ref 0 in
              while Int64.compare (SP.now_ns ()) deadline < 0 do
                SP.relax loop_overhead;
                (match Workload.pick mix (SP.rand_int 100) with
                | Workload.Push -> S.push stack ~tid (SP.rand_int value_range)
                | Workload.Pop -> ignore (S.pop stack ~tid)
                | Workload.Peek -> ignore (S.peek stack ~tid));
                incr ops
              done;
              counts.(tid) <- !ops)
        done;
        Sec_sim.Sim.await_all ();
        Array.fold_left ( + ) 0 counts)
  in
  Measurement.of_simulated ~algorithm:S.name ~threads ~ops
    ~cycles:duration_cycles

(* Like [run], but recording a per-operation latency histogram (virtual
   cycles, benchmark-loop overhead excluded). *)
let run_latency_profile (module Maker : Registry.MAKER) ~topology ~threads
    ~duration_cycles ~mix ?(prefill = default_prefill)
    ?(value_range = default_value_range) ?(seed = 1) () =
  let module S = Maker (SP) in
  let histogram, _ =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        let stack = S.create ~max_threads:(max threads 1) () in
        for i = 1 to prefill do
          S.push stack ~tid:0 (i mod value_range)
        done;
        let per_thread = Array.init threads (fun _ -> Latency.create ()) in
        let deadline = Int64.add (SP.now_ns ()) (Int64.of_int duration_cycles) in
        for _ = 1 to threads do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              let hist = per_thread.(tid) in
              while Int64.compare (SP.now_ns ()) deadline < 0 do
                SP.relax loop_overhead;
                let op = Workload.pick mix (SP.rand_int 100) in
                let start = SP.now_ns () in
                (match op with
                | Workload.Push -> S.push stack ~tid (SP.rand_int value_range)
                | Workload.Pop -> ignore (S.pop stack ~tid)
                | Workload.Peek -> ignore (S.peek stack ~tid));
                let finish = SP.now_ns () in
                Latency.add hist (Int64.to_int (Int64.sub finish start))
              done)
        done;
        Sec_sim.Sim.await_all ();
        Array.fold_left Latency.merge (Latency.create ()) per_thread)
  in
  histogram

(* SEC with statistics collection, for the batching-degree tables. *)
let run_sec_stats ~config ~topology ~threads ~duration_cycles ~mix
    ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  let module Sec = Sec_core.Sec_stack.Make (SP) in
  let config = { config with Sec_core.Config.collect_stats = true } in
  let stats, _ =
    Sec_sim.Sim.run ~seed ~jitter:bench_jitter ~topology (fun () ->
        let stack = Sec.create_with ~config ~max_threads:(max threads 1) () in
        for i = 1 to prefill do
          Sec.push stack ~tid:0 (i mod value_range)
        done;
        (* Exclude the single-threaded prefill (one batch per push) from
           the reported batching statistics. *)
        let baseline = Sec.stats stack in
        let deadline = Int64.add (SP.now_ns ()) (Int64.of_int duration_cycles) in
        for _ = 1 to threads do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              while Int64.compare (SP.now_ns ()) deadline < 0 do
                SP.relax loop_overhead;
                match Workload.pick mix (SP.rand_int 100) with
                | Workload.Push -> Sec.push stack ~tid (SP.rand_int value_range)
                | Workload.Pop -> ignore (Sec.pop stack ~tid)
                | Workload.Peek -> ignore (Sec.peek stack ~tid)
              done)
        done;
        Sec_sim.Sim.await_all ();
        Sec_core.Sec_stats.diff (Sec.stats stack) baseline)
  in
  stats
