(* Multi-seed variance analysis: the paper averages five runs and reports
   below-5% variance for SEC. The simulator is deterministic per seed, so
   "run-to-run variance" becomes "seed-to-seed spread" — same question,
   reproducibly answered. *)

type t = {
  mean : float;
  min : float;
  max : float;
  relative_spread : float;  (** (max - min) / mean, as a percentage *)
  samples : int;
}

let of_samples samples =
  match samples with
  | [] -> invalid_arg "Variance.of_samples: empty"
  | first :: _ ->
      let n = List.length samples in
      let sum = List.fold_left ( +. ) 0. samples in
      let mean = sum /. float_of_int n in
      let mn = List.fold_left min first samples in
      let mx = List.fold_left max first samples in
      let relative_spread =
        if mean = 0. then 0. else 100. *. (mx -. mn) /. mean
      in
      { mean; min = mn; max = mx; relative_spread; samples = n }

(* Throughput of [entry] across [seeds] distinct simulated runs. *)
let of_sim_runs (entry : Registry.entry) ~topology ~threads ~duration_cycles
    ~mix ~seeds =
  of_samples
    (List.map
       (fun seed ->
         (Sim_runner.run entry.Registry.maker ~topology ~threads
            ~duration_cycles ~mix ~seed ())
           .Measurement.mops)
       seeds)

let pp ppf t =
  Format.fprintf ppf "%.2f Mops/s (min %.2f, max %.2f, spread %.1f%%, n=%d)"
    t.mean t.min t.max t.relative_spread t.samples
