lib/harness/sim_runner.ml: Array Int64 Latency Measurement Registry Sec_core Sec_sim Workload
