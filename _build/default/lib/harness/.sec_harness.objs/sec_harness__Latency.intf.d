lib/harness/latency.mli:
