lib/harness/measurement.ml:
