lib/harness/sim_runner.mli: Latency Measurement Registry Sec_core Sec_sim Workload
