lib/harness/experiments.ml: Array Int64 Latency List Measurement Native_runner Option Printf Registry Report Sec_core Sec_funnel Sec_sim Sim_runner String Variance Workload
