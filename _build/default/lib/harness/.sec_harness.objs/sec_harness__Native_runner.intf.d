lib/harness/native_runner.mli: Measurement Registry Workload
