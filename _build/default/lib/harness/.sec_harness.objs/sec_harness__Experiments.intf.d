lib/harness/experiments.mli: Sec_sim
