lib/harness/variance.mli: Format Registry Sec_sim Workload
