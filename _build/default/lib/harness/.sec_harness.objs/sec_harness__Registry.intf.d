lib/harness/registry.mli: Sec_spec
