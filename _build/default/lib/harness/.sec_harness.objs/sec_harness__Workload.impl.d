lib/harness/workload.ml: List
