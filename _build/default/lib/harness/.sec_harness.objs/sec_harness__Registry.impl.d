lib/harness/registry.ml: List Printf Sec_core Sec_prim Sec_spec Sec_stacks
