lib/harness/variance.ml: Format List Measurement Registry Sim_runner
