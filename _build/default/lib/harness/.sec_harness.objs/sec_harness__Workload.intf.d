lib/harness/workload.mli:
