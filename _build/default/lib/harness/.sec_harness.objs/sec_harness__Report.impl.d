lib/harness/report.ml: Array Filename List Printf String Sys Unix
