lib/harness/measurement.mli:
