lib/harness/latency.ml: Array
