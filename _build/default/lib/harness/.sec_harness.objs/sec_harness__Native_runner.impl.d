lib/harness/native_runner.ml: Array Atomic Domain Int64 List Measurement Registry Sec_prim Unix Workload
