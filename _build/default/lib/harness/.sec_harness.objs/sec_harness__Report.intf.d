lib/harness/report.mli:
