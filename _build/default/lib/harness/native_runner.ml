(* Timed throughput runs on real domains (the paper's methodology: run for
   a fixed duration on a prefilled stack, threads drawing operations at
   random). Thread counts beyond the host's cores oversubscribe — fine for
   correctness, but this host has very few cores, so paper-scale numbers
   come from {!Sim_runner}. *)

module P = Sec_prim.Native
module Barrier = Sec_prim.Barrier.Make (P)

let default_prefill = 1_000
let default_value_range = 100_000

let run (module Maker : Registry.MAKER) ~threads ~duration ~mix
    ?(prefill = default_prefill) ?(value_range = default_value_range)
    ?(seed = 1) () =
  let module S = Maker (P) in
  let stack = S.create ~max_threads:(max threads 1) () in
  for i = 1 to prefill do
    S.push stack ~tid:0 (i mod value_range)
  done;
  let barrier = Barrier.create (threads + 1) in
  let stop = Atomic.make false in
  let counts = Array.make threads 0 in
  let worker tid () =
    P.seed_rng (Int64.of_int ((seed * 1000) + tid));
    let rng = Sec_prim.Rng.create (Int64.of_int ((seed * 77) + tid)) in
    Barrier.wait barrier;
    let ops = ref 0 in
    while not (Atomic.get stop) do
      (match Workload.pick mix (Sec_prim.Rng.int rng 100) with
      | Workload.Push -> S.push stack ~tid (Sec_prim.Rng.int rng value_range)
      | Workload.Pop -> ignore (S.pop stack ~tid)
      | Workload.Peek -> ignore (S.peek stack ~tid));
      incr ops
    done;
    counts.(tid) <- !ops
  in
  let domains = List.init threads (fun tid -> Domain.spawn (worker tid)) in
  Barrier.wait barrier;
  let t0 = Unix.gettimeofday () in
  Unix.sleepf duration;
  let t1 = Unix.gettimeofday () in
  Atomic.set stop true;
  List.iter Domain.join domains;
  let ops = Array.fold_left ( + ) 0 counts in
  Measurement.of_native ~algorithm:S.name ~threads ~ops ~elapsed:(t1 -. t0)
