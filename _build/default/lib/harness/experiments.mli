(** The experiment registry: one entry per figure and table of the paper's
    evaluation (DESIGN.md holds the index). *)

type opts = {
  scale : float;  (** duration multiplier (1.0 = default run length) *)
  csv_dir : string option;  (** write CSV series here if set *)
  native : bool;  (** append native-domain sanity sweeps *)
  seed : int;  (** simulation seed; results are deterministic per seed *)
}

val default_opts : opts

type t = { id : string; title : string; run : opts -> unit }

(** Simulated duration for one data point under [opts]. *)
val duration_cycles : opts -> int

(** Thread counts swept on a given machine profile. *)
val threads_for : Sec_sim.Topology.t -> int list

(** All experiments: fig2..fig12, table1..table3, plus the ablations. *)
val all : t list

val find : string -> t option
val ids : unit -> string list
