(** Power-of-two-bucket latency histograms: O(1) update, mergeable, with
    percentile upper bounds. Values are in clock units (ns or cycles). *)

type t

val create : unit -> t

(** Record one latency sample. *)
val add : t -> int -> unit

(** Combine two histograms (e.g. per-thread into a total). *)
val merge : t -> t -> t

val count : t -> int
val mean : t -> float

(** [percentile t p] — upper edge of the bucket holding the p-th
    percentile, i.e. a tight upper bound (within 2x) on it. *)
val percentile : t -> float -> int
