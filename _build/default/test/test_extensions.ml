(* Tests for the extension modules: hierarchical H-Synch combining, the
   EBR-integrated stack (paper Section 4), and latency histograms. *)

module P = Sec_prim.Native
module Hsynch = Sec_stacks.Hsynch.Make (P)
module H_stack = Sec_stacks.H_stack.Make (P)
module SimH = Sec_stacks.H_stack.Make (Sec_sim.Sim.Prim)
module Reclaimed = Sec_reclaim.Reclaimed_stack.Make (P)
module Ebr = Sec_reclaim.Ebr.Make (P)
module Latency = Sec_harness.Latency

(* ------------------------------------------------------------------ *)
(* H-Synch                                                              *)

let test_hsynch_counter () =
  let counter = ref 0 in
  let h =
    Hsynch.create ~max_threads:4 ~cluster_size:2
      ~apply:(fun n ->
        counter := !counter + n;
        !counter)
      ()
  in
  let n = 4 and per_thread = 2_000 in
  let body tid () =
    for _ = 1 to per_thread do
      ignore (Hsynch.apply h ~tid 1)
    done
  in
  let ds = List.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments across clusters" (n * per_thread)
    !counter

let test_hsynch_sequential () =
  let h = Hsynch.create ~max_threads:1 ~apply:(fun x -> x * 3) () in
  for i = 1 to 50 do
    Alcotest.(check int) "result routing" (3 * i) (Hsynch.apply h ~tid:0 i)
  done

let test_hstack_simulated_at_scale () =
  (* Conservation at 48 fibers spanning both simulated sockets. *)
  let module SP = Sec_sim.Sim.Prim in
  let delta, _ =
    Sec_sim.Sim.run ~topology:Sec_sim.Topology.emerald (fun () ->
        let s = SimH.create ~max_threads:48 () in
        let pushed = ref 0 and popped = ref 0 in
        for _ = 1 to 48 do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              for i = 1 to 60 do
                if SP.rand_int 2 = 0 then begin
                  SimH.push s ~tid i;
                  incr pushed
                end
                else
                  match SimH.pop s ~tid with
                  | Some _ -> incr popped
                  | None -> ()
              done)
        done;
        Sec_sim.Sim.await_all ();
        let rec drain n =
          match SimH.pop s ~tid:0 with Some _ -> drain (n + 1) | None -> n
        in
        !pushed - !popped - drain 0)
  in
  Alcotest.(check int) "pushed = popped + drained" 0 delta

(* ------------------------------------------------------------------ *)
(* Reclaimed stack                                                      *)

let test_reclaimed_lifo () =
  let s = Reclaimed.create ~max_threads:1 () in
  let noop () = () in
  Reclaimed.push s ~tid:0 1 ~on_reclaim:noop;
  Reclaimed.push s ~tid:0 2 ~on_reclaim:noop;
  Alcotest.(check (option int)) "peek" (Some 2) (Reclaimed.peek s ~tid:0);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Reclaimed.pop s ~tid:0);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Reclaimed.pop s ~tid:0);
  Alcotest.(check (option int)) "empty" None (Reclaimed.pop s ~tid:0)

let test_reclaimed_destructors_run () =
  let s = Reclaimed.create ~max_threads:1 () in
  let freed = ref 0 in
  for i = 1 to 100 do
    Reclaimed.push s ~tid:0 i ~on_reclaim:(fun () -> incr freed)
  done;
  for _ = 1 to 100 do
    ignore (Reclaimed.pop s ~tid:0)
  done;
  Reclaimed.flush s ~tid:0;
  Alcotest.(check int) "every popped node reclaimed" 100 !freed;
  let stats = Reclaimed.reclamation_stats s in
  Alcotest.(check int) "stats agree" 100 stats.Ebr.reclaimed

let test_reclaimed_concurrent_safety () =
  (* Destructors mark nodes dead; no thread may pop a value whose node was
     already reclaimed (would indicate premature reclamation). *)
  let threads = 4 in
  let s = Reclaimed.create ~max_threads:threads () in
  let premature = Atomic.make 0 in
  let body tid () =
    for i = 1 to 3_000 do
      let live = Atomic.make true in
      Reclaimed.push s ~tid i ~on_reclaim:(fun () -> Atomic.set live false);
      match Reclaimed.pop s ~tid with
      | Some _ -> ()
      | None -> Atomic.incr premature (* can't happen: we just pushed *)
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no anomalies" 0 (Atomic.get premature);
  for tid = 0 to threads - 1 do
    Reclaimed.flush s ~tid
  done;
  let stats = Reclaimed.reclamation_stats s in
  Alcotest.(check int) "all pops retired a node" (threads * 3_000)
    stats.Ebr.retired

(* ------------------------------------------------------------------ *)
(* Latency histogram                                                    *)

let test_latency_empty () =
  let h = Latency.create () in
  Alcotest.(check int) "count" 0 (Latency.count h);
  Alcotest.(check (float 0.0)) "mean" 0. (Latency.mean h);
  Alcotest.(check int) "p99" 0 (Latency.percentile h 99.)

let test_latency_percentiles () =
  let h = Latency.create () in
  (* 90 fast ops (~8 cycles), 10 slow (~1000 cycles). *)
  for _ = 1 to 90 do
    Latency.add h 8
  done;
  for _ = 1 to 10 do
    Latency.add h 1000
  done;
  Alcotest.(check int) "count" 100 (Latency.count h);
  Alcotest.(check bool) "p50 is fast" true (Latency.percentile h 50. <= 8);
  Alcotest.(check bool) "p99 is slow" true (Latency.percentile h 99. >= 1000);
  Alcotest.(check bool) "p99 within 2x" true (Latency.percentile h 99. <= 2048);
  Alcotest.(check (float 1.)) "mean" 107.2 (Latency.mean h)

let test_latency_merge () =
  let a = Latency.create () and b = Latency.create () in
  Latency.add a 4;
  Latency.add b 4096;
  let m = Latency.merge a b in
  Alcotest.(check int) "merged count" 2 (Latency.count m);
  Alcotest.(check bool) "max preserved" true (Latency.percentile m 100. >= 4096)

let qcheck_latency_percentile_monotone =
  QCheck.Test.make ~name:"latency: percentiles are monotone" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 1 100_000))
    (fun samples ->
      let h = Latency.create () in
      List.iter (Latency.add h) samples;
      let p50 = Latency.percentile h 50. in
      let p90 = Latency.percentile h 90. in
      let p99 = Latency.percentile h 99. in
      p50 <= p90 && p90 <= p99
      && p99 >= List.fold_left max 1 samples / 2
      (* upper bound property: p100 >= max sample *)
      && Latency.percentile h 100. >= List.fold_left max 1 samples)

let () =
  Alcotest.run "extensions"
    [
      ( "hsynch",
        [
          Alcotest.test_case "counter across clusters" `Quick
            test_hsynch_counter;
          Alcotest.test_case "sequential" `Quick test_hsynch_sequential;
          Alcotest.test_case "48-fiber conservation" `Quick
            test_hstack_simulated_at_scale;
        ]
        @ Testkit.standard_suite (module H_stack) );
      ( "reclaimed stack",
        [
          Alcotest.test_case "lifo" `Quick test_reclaimed_lifo;
          Alcotest.test_case "destructors run" `Quick
            test_reclaimed_destructors_run;
          Alcotest.test_case "concurrent safety" `Quick
            test_reclaimed_concurrent_safety;
        ] );
      ( "latency histogram",
        [
          Alcotest.test_case "empty" `Quick test_latency_empty;
          Alcotest.test_case "percentiles" `Quick test_latency_percentiles;
          Alcotest.test_case "merge" `Quick test_latency_merge;
          QCheck_alcotest.to_alcotest qcheck_latency_percentile_monotone;
        ] );
    ]
