(* Shared test machinery: every concurrent stack implementation must pass
   the same battery — sequential LIFO semantics, model equivalence,
   multi-domain conservation, and linearizability of recorded histories. *)

module P = Sec_prim.Native

module type STACK = Sec_spec.Stack_intf.S

(* ------------------------------------------------------------------ *)
(* Sequential semantics                                                 *)

let sequential_lifo (module S : STACK) () =
  let s = S.create () in
  Alcotest.(check (option int)) "pop empty" None (S.pop s ~tid:0);
  Alcotest.(check (option int)) "peek empty" None (S.peek s ~tid:0);
  S.push s ~tid:0 1;
  S.push s ~tid:0 2;
  S.push s ~tid:0 3;
  Alcotest.(check (option int)) "peek" (Some 3) (S.peek s ~tid:0);
  Alcotest.(check (option int)) "pop 3" (Some 3) (S.pop s ~tid:0);
  Alcotest.(check (option int)) "pop 2" (Some 2) (S.pop s ~tid:0);
  S.push s ~tid:0 4;
  Alcotest.(check (option int)) "pop 4" (Some 4) (S.pop s ~tid:0);
  Alcotest.(check (option int)) "pop 1" (Some 1) (S.pop s ~tid:0);
  Alcotest.(check (option int)) "pop empty again" None (S.pop s ~tid:0)

let qcheck_sequential_model (module S : STACK) =
  QCheck.Test.make
    ~name:(S.name ^ ": agrees with sequential model")
    ~count:200
    QCheck.(list (option small_int))
    (fun ops ->
      let s = S.create () in
      let model = Sec_spec.Seq_stack.create () in
      List.for_all
        (function
          | Some v ->
              S.push s ~tid:0 v;
              Sec_spec.Seq_stack.push model v;
              true
          | None ->
              S.pop s ~tid:0 = Sec_spec.Seq_stack.pop model
              && S.peek s ~tid:0 = Sec_spec.Seq_stack.peek model)
        ops)

(* ------------------------------------------------------------------ *)
(* Conservation under real concurrency                                  *)

(* Tag values so that every pushed value is globally unique. *)
let tag ~tid i = (tid * 1_000_000) + i

module IntSet = Set.Make (Int)

(* Each of [threads] domains performs [ops] operations (a random mix of
   pushes of unique values and pops). Afterwards we check that:
   - no value was popped twice,
   - every popped value was pushed,
   - pushed = popped + what remains on the stack. *)
let conservation ?(threads = 4) ?(ops = 3_000) ?(seed = 7) (module S : STACK)
    () =
  let s = S.create ~max_threads:threads () in
  let pushed = Array.make threads [] in
  let popped = Array.make threads [] in
  let body tid () =
    P.seed_rng (Int64.of_int (seed + tid));
    let rng = Sec_prim.Rng.create (Int64.of_int (seed + (100 * tid))) in
    for i = 1 to ops do
      if Sec_prim.Rng.int rng 2 = 0 then begin
        let v = tag ~tid i in
        S.push s ~tid v;
        pushed.(tid) <- v :: pushed.(tid)
      end
      else
        match S.pop s ~tid with
        | Some v -> popped.(tid) <- v :: popped.(tid)
        | None -> ()
    done
  in
  let domains = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join domains;
  (* Drain what remains, single-threaded. *)
  let rec drain acc =
    match S.pop s ~tid:0 with Some v -> drain (v :: acc) | None -> acc
  in
  let remaining = drain [] in
  let all_pushed =
    Array.fold_left (fun acc l -> List.fold_left (fun a v -> IntSet.add v a) acc l)
      IntSet.empty pushed
  in
  let all_popped = Array.to_list popped |> List.concat in
  let popped_set =
    List.fold_left (fun a v -> IntSet.add v a) IntSet.empty all_popped
  in
  Alcotest.(check int)
    "no value popped twice"
    (List.length all_popped)
    (IntSet.cardinal popped_set);
  List.iter
    (fun v ->
      if not (IntSet.mem v all_pushed) then
        Alcotest.failf "popped a never-pushed value: %d" v)
    all_popped;
  let accounted =
    List.fold_left (fun a v -> IntSet.add v a) popped_set remaining
  in
  Alcotest.(check int)
    "pushed = popped + remaining"
    (IntSet.cardinal all_pushed)
    (IntSet.cardinal accounted);
  Alcotest.(check bool)
    "no duplicates between popped and remaining" true
    (List.for_all (fun v -> not (IntSet.mem v popped_set)) remaining)

(* ------------------------------------------------------------------ *)
(* Linearizability of recorded histories                                *)

(* Run a small, highly concurrent workload with operation recording and
   check the history against the LIFO specification. Repeated over many
   seeds to explore distinct interleavings. *)
let linearizability ?(threads = 3) ?(ops = 10) ?(rounds = 15) ?(peeks = true)
    (module S : STACK) () =
  let module I = Sec_spec.History.Instrument (Sec_prim.Native) (S) in
  for round = 1 to rounds do
    let t = I.create ~max_threads:threads () in
    let body tid () =
      P.seed_rng (Int64.of_int ((round * 1000) + tid));
      let rng = Sec_prim.Rng.create (Int64.of_int ((round * 37) + tid)) in
      for i = 1 to ops do
        match Sec_prim.Rng.int rng (if peeks then 5 else 4) with
        | 0 | 1 -> I.push t ~tid (tag ~tid i)
        | 2 | 3 -> ignore (I.pop t ~tid)
        | _ -> ignore (I.peek t ~tid)
      done
    in
    let domains =
      List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1)))
    in
    body 0 ();
    List.iter Domain.join domains;
    let events = Sec_spec.History.events t.history in
    match Sec_spec.Lin_check.check events with
    | Sec_spec.Lin_check.Linearizable -> ()
    | Sec_spec.Lin_check.Gave_up ->
        (* Bounded search exhausted: not a failure, but worth knowing. *)
        Printf.eprintf "[%s] lin check gave up on round %d (%d events)\n%!"
          S.name round (List.length events)
    | Sec_spec.Lin_check.Not_linearizable ->
        let buf = Buffer.create 256 in
        let ppf = Format.formatter_of_buffer buf in
        List.iter
          (fun e ->
            Sec_spec.History.pp_event Format.pp_print_int ppf e;
            Format.pp_print_newline ppf ())
          events;
        Format.pp_print_flush ppf ();
        Alcotest.failf "%s: round %d NOT linearizable:\n%s" S.name round
          (Buffer.contents buf)
  done

(* ------------------------------------------------------------------ *)
(* Suite assembly                                                       *)

let standard_suite ?(threads = 4) ?(lin_threads = 3) (module S : STACK) =
  [
    Alcotest.test_case "sequential lifo" `Quick (sequential_lifo (module S));
    QCheck_alcotest.to_alcotest (qcheck_sequential_model (module S));
    Alcotest.test_case "conservation (4 domains)" `Quick
      (conservation ~threads (module S));
    Alcotest.test_case "linearizable histories" `Slow
      (linearizability ~threads:lin_threads (module S));
  ]
