(* Tests for the SEC-style pool (the paper's "independent interest"
   extension): bag semantics — nothing lost, nothing duplicated — plus
   elimination and sharded-stealing behaviour. *)

module P = Sec_prim.Native
module Pool = Sec_core.Sec_pool.Make (P)
module SimPool = Sec_core.Sec_pool.Make (Sec_sim.Sim.Prim)
module IntSet = Set.Make (Int)

let test_sequential_bag () =
  let p = Pool.create ~max_threads:1 () in
  Alcotest.(check (option int)) "empty pop" None (Pool.pop p ~tid:0);
  Pool.push p ~tid:0 1;
  Pool.push p ~tid:0 2;
  Pool.push p ~tid:0 3;
  Alcotest.(check int) "size" 3 (Pool.size p);
  let drained =
    List.sort compare
      (List.filter_map (fun _ -> Pool.pop p ~tid:0) [ (); (); () ])
  in
  Alcotest.(check (list int)) "all values come back" [ 1; 2; 3 ] drained;
  Alcotest.(check (option int)) "empty again" None (Pool.pop p ~tid:0)

let test_sequential_lifo_within_thread () =
  (* A single thread with one aggregator sees LIFO order (each op is its
     own batch against the local store). *)
  let p = Pool.create ~aggregators:1 ~max_threads:1 () in
  Pool.push p ~tid:0 1;
  Pool.push p ~tid:0 2;
  Alcotest.(check (option int)) "lifo pop" (Some 2) (Pool.pop p ~tid:0);
  Alcotest.(check (option int)) "lifo pop" (Some 1) (Pool.pop p ~tid:0)

let test_stealing_across_aggregators () =
  (* Values pushed via aggregator 0 must be reachable from a popper bound
     to aggregator 1 (its own store is empty, so it steals). *)
  let p = Pool.create ~aggregators:2 ~max_threads:4 () in
  Pool.push p ~tid:0 11;
  Pool.push p ~tid:0 22;
  Alcotest.(check bool) "steal finds a value" true (Pool.pop p ~tid:1 <> None);
  Alcotest.(check bool) "steal finds the other" true (Pool.pop p ~tid:1 <> None);
  Alcotest.(check (option int)) "then empty" None (Pool.pop p ~tid:1)

let test_conservation_native () =
  let threads = 4 and ops = 3_000 in
  let p = Pool.create ~max_threads:threads () in
  let pushed = Array.make threads [] and popped = Array.make threads [] in
  let body tid () =
    let rng = Sec_prim.Rng.create (Int64.of_int (tid + 9)) in
    for i = 1 to ops do
      if Sec_prim.Rng.int rng 2 = 0 then begin
        let v = (tid * 1_000_000) + i in
        Pool.push p ~tid v;
        pushed.(tid) <- v :: pushed.(tid)
      end
      else
        match Pool.pop p ~tid with
        | Some v -> popped.(tid) <- v :: popped.(tid)
        | None -> ()
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  let rec drain acc =
    match Pool.pop p ~tid:0 with Some v -> drain (v :: acc) | None -> acc
  in
  let remaining = drain [] in
  let all_pushed =
    Array.fold_left
      (fun acc l -> List.fold_left (fun a v -> IntSet.add v a) acc l)
      IntSet.empty pushed
  in
  let all_popped = (Array.to_list popped |> List.concat) @ remaining in
  let popped_set =
    List.fold_left (fun a v -> IntSet.add v a) IntSet.empty all_popped
  in
  Alcotest.(check int) "no duplicates" (List.length all_popped)
    (IntSet.cardinal popped_set);
  Alcotest.(check int) "nothing lost, nothing invented"
    (IntSet.cardinal all_pushed)
    (IntSet.cardinal popped_set);
  Alcotest.(check bool) "popped subset of pushed" true
    (IntSet.subset popped_set all_pushed)

let test_conservation_simulated_at_scale () =
  let threads = 40 and ops = 100 in
  let delta, _ =
    Sec_sim.Sim.run ~topology:Sec_sim.Topology.emerald (fun () ->
        let p = SimPool.create ~aggregators:4 ~max_threads:threads () in
        let pushed = ref 0 and popped = ref 0 in
        for _ = 1 to threads do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              for i = 1 to ops do
                if Sec_sim.Sim.Prim.rand_int 2 = 0 then begin
                  SimPool.push p ~tid i;
                  incr pushed
                end
                else
                  match SimPool.pop p ~tid with
                  | Some _ -> incr popped
                  | None -> ()
              done)
        done;
        Sec_sim.Sim.await_all ();
        let rec drain n =
          match SimPool.pop p ~tid:0 with
          | Some _ -> drain (n + 1)
          | None -> n
        in
        !pushed - !popped - drain 0)
  in
  Alcotest.(check int) "pushed = popped + drained (40 fibers)" 0 delta

let test_no_global_hot_spot () =
  (* Sanity on the design claim: two aggregators maintain two disjoint
     backing stores; pushing via tid 0 and tid 1 populates both. *)
  let p = Pool.create ~aggregators:2 ~max_threads:2 () in
  for i = 1 to 10 do
    Pool.push p ~tid:0 i;
    Pool.push p ~tid:1 (100 + i)
  done;
  Alcotest.(check int) "all present" 20 (Pool.size p);
  (* Draining from one tid must still find everything (stealing). *)
  let rec drain n =
    match Pool.pop p ~tid:0 with Some _ -> drain (n + 1) | None -> n
  in
  Alcotest.(check int) "drained everything from one side" 20 (drain 0)

let qcheck_pool_multiset =
  QCheck.Test.make ~name:"pool: sequential multiset semantics" ~count:200
    QCheck.(list (option small_int))
    (fun ops ->
      let p = Pool.create ~max_threads:1 () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (function
          | Some v ->
              Pool.push p ~tid:0 v;
              model := v :: !model
          | None -> (
              match Pool.pop p ~tid:0 with
              | Some v ->
                  if List.mem v !model then
                    model :=
                      (let removed = ref false in
                       List.filter
                         (fun x ->
                           if x = v && not !removed then begin
                             removed := true;
                             false
                           end
                           else true)
                         !model)
                  else ok := false
              | None -> if !model <> [] then ok := false))
        ops;
      !ok && List.length !model = Pool.size p)

let () =
  Alcotest.run "pool"
    [
      ( "sequential",
        [
          Alcotest.test_case "bag" `Quick test_sequential_bag;
          Alcotest.test_case "per-thread lifo" `Quick
            test_sequential_lifo_within_thread;
          Alcotest.test_case "stealing" `Quick test_stealing_across_aggregators;
          QCheck_alcotest.to_alcotest qcheck_pool_multiset;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "conservation (domains)" `Quick
            test_conservation_native;
          Alcotest.test_case "conservation (40 fibers)" `Quick
            test_conservation_simulated_at_scale;
          Alcotest.test_case "sharded stores" `Quick test_no_global_hot_spot;
        ] );
    ]
