(* Tests for the baseline stacks (TRB, LCK, EB, FC, CC, TSI) and their
   substrates (exchanger, flat-combining and CC-Synch executors). *)

module P = Sec_prim.Native
module Treiber = Sec_stacks.Treiber.Make (P)
module Lock_stack = Sec_stacks.Lock_stack.Make (P)
module Eb = Sec_stacks.Eb_stack.Make (P)
module Fc_stack = Sec_stacks.Fc_stack.Make (P)
module Cc_stack = Sec_stacks.Cc_stack.Make (P)
module Ts = Sec_stacks.Ts_stack.Make (P)
module Exchanger = Sec_stacks.Exchanger.Make (P)
module Fc = Sec_stacks.Fc.Make (P)
module Ccsynch = Sec_stacks.Ccsynch.Make (P)

(* ------------------------------------------------------------------ *)
(* Exchanger                                                            *)

let test_exchanger_timeout () =
  let x = Exchanger.create () in
  match Exchanger.exchange x 1 ~timeout:1000 with
  | Exchanger.Timed_out { crowded } ->
      Alcotest.(check bool) "lonely, not crowded" false crowded
  | Exchanger.Exchanged _ -> Alcotest.fail "lonely exchange must time out"

let test_exchanger_pairs () =
  (* Two threads exchanging must each receive the other's offer. *)
  let x = Exchanger.create () in
  let got = Array.make 2 (-1) in
  let body tid offer () =
    let rec go () =
      match Exchanger.exchange x offer ~timeout:100_000 with
      | Exchanger.Exchanged v -> got.(tid) <- v
      | Exchanger.Timed_out _ -> go ()
    in
    go ()
  in
  let d = Domain.spawn (body 1 200) in
  body 0 100 ();
  Domain.join d;
  Alcotest.(check int) "thread 0 got 200" 200 got.(0);
  Alcotest.(check int) "thread 1 got 100" 100 got.(1)

let test_exchanger_many_pairs () =
  (* Four threads exchange opportunistically until a global number of
     successes is reached (a fixed per-thread quota could strand the last
     thread without a partner). Every received offer must be unique: the
     exchanger never delivers an offer twice. *)
  let x = Exchanger.create () in
  let n = 4 and target = 200 in
  let successes = Atomic.make 0 in
  let received = Array.make n [] in
  let body tid () =
    let attempt = ref 0 in
    while Atomic.get successes < target do
      incr attempt;
      let offer = (tid * 1_000_000) + !attempt in
      match Exchanger.exchange x offer ~timeout:20_000 with
      | Exchanger.Exchanged v ->
          received.(tid) <- v :: received.(tid);
          Atomic.incr successes
      | Exchanger.Timed_out _ -> ()
    done
  in
  let ds = List.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  let all = Array.to_list received |> List.concat in
  Alcotest.(check bool) "reached the target" true (List.length all >= target);
  let unique = List.sort_uniq compare all in
  Alcotest.(check int) "offers received at most once" (List.length all)
    (List.length unique)

(* ------------------------------------------------------------------ *)
(* Flat-combining executor                                              *)

let test_fc_counter () =
  (* Use FC to protect a sequential counter; no increments may be lost and
     some requests must have been executed by a combiner. *)
  let counter = ref 0 in
  let fc =
    Fc.create ~max_threads:4
      ~apply:(fun n ->
        counter := !counter + n;
        !counter)
      ()
  in
  let n = 4 and per_thread = 2_000 in
  let body tid () =
    for _ = 1 to per_thread do
      ignore (Fc.apply fc ~tid 1)
    done
  in
  let ds = List.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (n * per_thread) !counter;
  Alcotest.(check bool) "combining happened" true (Fc.combined_ops fc > 0)

let test_fc_result_routing () =
  (* Results must go back to the requester: each thread adds its own tag
     and checks the running value is consistent (monotone). *)
  let fc = Fc.create ~max_threads:2 ~apply:(fun x -> x * 2) () in
  for i = 1 to 100 do
    Alcotest.(check int) "doubled" (2 * i) (Fc.apply fc ~tid:0 i)
  done

(* ------------------------------------------------------------------ *)
(* CC-Synch executor                                                    *)

let test_ccsynch_counter () =
  let counter = ref 0 in
  let cc =
    Ccsynch.create ~max_threads:4
      ~apply:(fun n ->
        counter := !counter + n;
        !counter)
      ()
  in
  let n = 4 and per_thread = 2_000 in
  let body tid () =
    for _ = 1 to per_thread do
      ignore (Ccsynch.apply cc ~tid 1)
    done
  in
  let ds = List.init (n - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (n * per_thread) !counter

let test_ccsynch_sequential () =
  let cc = Ccsynch.create ~max_threads:1 ~apply:(fun x -> x + 1) () in
  for i = 0 to 50 do
    Alcotest.(check int) "increment result" (i + 1) (Ccsynch.apply cc ~tid:0 i)
  done

let test_ccsynch_combine_limit () =
  (* With a tiny combine limit the role must hand off rather than starve:
     the run still completes and sums correctly. *)
  let counter = ref 0 in
  let cc =
    Ccsynch.create ~max_threads:3 ~combine_limit:2
      ~apply:(fun n ->
        counter := !counter + n;
        !counter)
      ()
  in
  let body tid () =
    for _ = 1 to 1_000 do
      ignore (Ccsynch.apply cc ~tid 1)
    done
  in
  let ds = List.init 2 (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "sum with handoffs" 3_000 !counter;
  Alcotest.(check bool) "handoffs happened" true (Ccsynch.handoffs cc > 0)

(* ------------------------------------------------------------------ *)
(* TSI specifics                                                        *)

let test_tsi_cross_thread_pop () =
  (* Values pushed by one thread must be poppable by another. *)
  let s = Ts.create ~max_threads:2 () in
  Ts.push s ~tid:0 11;
  Ts.push s ~tid:1 22;
  let a = Ts.pop s ~tid:0 and b = Ts.pop s ~tid:0 in
  let got = List.sort compare [ a; b ] in
  Alcotest.(check (list (option int))) "both values" [ Some 11; Some 22 ] got;
  Alcotest.(check (option int)) "then empty" None (Ts.pop s ~tid:1)

let test_tsi_pool_trimming () =
  (* Push/pop churn in one pool must not grow scans unboundedly: after
     draining, a fresh pop returns quickly with None. *)
  let s = Ts.create ~max_threads:1 () in
  for round = 1 to 100 do
    Ts.push s ~tid:0 round;
    Alcotest.(check (option int)) "lifo" (Some round) (Ts.pop s ~tid:0)
  done;
  Alcotest.(check (option int)) "drained" None (Ts.pop s ~tid:0)

(* ------------------------------------------------------------------ *)
(* Degenerate configurations                                            *)

let test_single_slot_configs () =
  (* Every implementation must work with max_threads = 1 (single-slot
     exchanger arrays, one publication record, one pool, ...). *)
  List.iter
    (fun (name, push, pop) ->
      push 5;
      push 6;
      Alcotest.(check (option int)) (name ^ " pop 6") (Some 6) (pop ());
      Alcotest.(check (option int)) (name ^ " pop 5") (Some 5) (pop ());
      Alcotest.(check (option int)) (name ^ " empty") None (pop ()))
    [
      (let s = Treiber.create ~max_threads:1 () in
       ("treiber", Treiber.push s ~tid:0, fun () -> Treiber.pop s ~tid:0));
      (let s = Eb.create ~max_threads:1 () in
       ("eb", Eb.push s ~tid:0, fun () -> Eb.pop s ~tid:0));
      (let s = Fc_stack.create ~max_threads:1 () in
       ("fc", Fc_stack.push s ~tid:0, fun () -> Fc_stack.pop s ~tid:0));
      (let s = Cc_stack.create ~max_threads:1 () in
       ("cc", Cc_stack.push s ~tid:0, fun () -> Cc_stack.pop s ~tid:0));
      (let s = Ts.create ~max_threads:1 () in
       ("tsi", Ts.push s ~tid:0, fun () -> Ts.pop s ~tid:0));
      (let s = Lock_stack.create ~max_threads:1 () in
       ("lock", Lock_stack.push s ~tid:0, fun () -> Lock_stack.pop s ~tid:0));
    ]

let test_fc_stats_accessors () =
  let fc = Fc.create ~max_threads:2 ~apply:(fun x -> x) () in
  ignore (Fc.apply fc ~tid:0 1);
  Alcotest.(check bool) "acquisitions counted" true
    (Fc.lock_acquisitions fc >= 1);
  Alcotest.(check bool) "combines counted" true (Fc.combined_ops fc >= 1)

let test_tsi_take_now_elimination () =
  (* A pop that starts before a push completes may take the in-flight node
     immediately (interval elimination). Sequentially: a pop after a push
     must of course find it — this exercises the Take_now path because the
     node's interval begins after the pop's start only under concurrency,
     so here we just pin the basic visibility guarantee. *)
  let s = Ts.create ~max_threads:2 () in
  Ts.push s ~tid:0 1;
  Alcotest.(check (option int)) "peek sees it" (Some 1) (Ts.peek s ~tid:1);
  Alcotest.(check (option int)) "pop takes it" (Some 1) (Ts.pop s ~tid:1)

let test_tsi_peek_skips_taken () =
  let s = Ts.create ~max_threads:1 () in
  Ts.push s ~tid:0 1;
  Ts.push s ~tid:0 2;
  ignore (Ts.pop s ~tid:0);
  Alcotest.(check (option int)) "peek skips the taken node" (Some 1)
    (Ts.peek s ~tid:0)

let qcheck_stack_pairwise_agreement =
  (* All implementations must agree with each other on any sequential op
     sequence (not just with the model) — catches divergence in empty /
     duplicate handling. *)
  QCheck.Test.make ~name:"all stacks agree pairwise" ~count:100
    QCheck.(list (option small_int))
    (fun ops ->
      let trace push pop =
        List.map
          (function
            | Some v ->
                push v;
                None
            | None -> pop ())
          ops
      in
      let t_trb =
        let s = Treiber.create () in
        trace (Treiber.push s ~tid:0) (fun () -> Treiber.pop s ~tid:0)
      in
      let t_eb =
        let s = Eb.create () in
        trace (Eb.push s ~tid:0) (fun () -> Eb.pop s ~tid:0)
      in
      let t_fc =
        let s = Fc_stack.create () in
        trace (Fc_stack.push s ~tid:0) (fun () -> Fc_stack.pop s ~tid:0)
      in
      let t_cc =
        let s = Cc_stack.create () in
        trace (Cc_stack.push s ~tid:0) (fun () -> Cc_stack.pop s ~tid:0)
      in
      let t_ts =
        let s = Ts.create () in
        trace (Ts.push s ~tid:0) (fun () -> Ts.pop s ~tid:0)
      in
      let t_sec =
        let module Sec = Sec_core.Sec_stack.Make (P) in
        let s = Sec.create () in
        trace (Sec.push s ~tid:0) (fun () -> Sec.pop s ~tid:0)
      in
      t_trb = t_eb && t_eb = t_fc && t_fc = t_cc && t_cc = t_ts
      && t_ts = t_sec)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stacks"
    [
      ("treiber", Testkit.standard_suite (module Treiber));
      ("lock", Testkit.standard_suite (module Lock_stack));
      ("eb", Testkit.standard_suite (module Eb));
      ("fc", Testkit.standard_suite (module Fc_stack));
      ("cc", Testkit.standard_suite (module Cc_stack));
      ("tsi", Testkit.standard_suite (module Ts));
      ( "exchanger",
        [
          Alcotest.test_case "timeout" `Quick test_exchanger_timeout;
          Alcotest.test_case "pairs" `Quick test_exchanger_pairs;
          Alcotest.test_case "many pairs" `Quick test_exchanger_many_pairs;
        ] );
      ( "fc executor",
        [
          Alcotest.test_case "protected counter" `Quick test_fc_counter;
          Alcotest.test_case "result routing" `Quick test_fc_result_routing;
        ] );
      ( "ccsynch executor",
        [
          Alcotest.test_case "protected counter" `Quick test_ccsynch_counter;
          Alcotest.test_case "sequential" `Quick test_ccsynch_sequential;
          Alcotest.test_case "combine limit handoff" `Quick
            test_ccsynch_combine_limit;
        ] );
      ( "tsi details",
        [
          Alcotest.test_case "cross-thread pop" `Quick test_tsi_cross_thread_pop;
          Alcotest.test_case "pool trimming" `Quick test_tsi_pool_trimming;
          Alcotest.test_case "visibility" `Quick test_tsi_take_now_elimination;
          Alcotest.test_case "peek skips taken" `Quick test_tsi_peek_skips_taken;
        ] );
      ( "degenerate configs",
        [
          Alcotest.test_case "max_threads = 1 everywhere" `Quick
            test_single_slot_configs;
          Alcotest.test_case "fc stats accessors" `Quick test_fc_stats_accessors;
          QCheck_alcotest.to_alcotest qcheck_stack_pairwise_agreement;
        ] );
    ]
