(* Tests for the packaged conformance kit: it must pass every real stack
   on both substrates and flag a deliberately broken one. *)

module C = Sec_spec.Conformance

(* Simulator-backed runner: each [run] is a fresh simulated machine. *)
module Sim_runner : C.RUNNER with module P = Sec_sim.Sim.Prim = struct
  module P = Sec_sim.Sim.Prim

  let run body =
    let result, _ =
      Sec_sim.Sim.run ~topology:Sec_sim.Topology.emerald (fun () ->
          body ~spawn:Sec_sim.Sim.spawn ~await:Sec_sim.Sim.await_all)
    in
    result
end

let check_conforms name (report : C.report) =
  List.iter
    (fun (f : C.failure) ->
      Alcotest.failf "%s: %s failed: %s" name f.C.check f.C.detail)
    report.C.failures;
  Alcotest.(check bool) (name ^ " ran checks") true (report.C.passed > 0)

let test_all_stacks_native () =
  let module T = C.Make (C.Domain_runner) (Sec_stacks.Treiber.Make (Sec_prim.Native)) in
  check_conforms "treiber/native" (T.all ());
  let module E = C.Make (C.Domain_runner) (Sec_stacks.Eb_stack.Make (Sec_prim.Native)) in
  check_conforms "eb/native" (E.all ());
  let module S = C.Make (C.Domain_runner) (Sec_core.Sec_stack.Make (Sec_prim.Native)) in
  check_conforms "sec/native" (S.all ())

let test_all_stacks_simulated () =
  let module T = C.Make (Sim_runner) (Sec_stacks.Treiber.Make (Sec_sim.Sim.Prim)) in
  check_conforms "treiber/sim" (T.all ~threads:16 ~ops:100 ());
  let module F = C.Make (Sim_runner) (Sec_stacks.Fc_stack.Make (Sec_sim.Sim.Prim)) in
  check_conforms "fc/sim" (F.all ~threads:16 ~ops:100 ());
  let module S = C.Make (Sim_runner) (Sec_core.Sec_stack.Make (Sec_sim.Sim.Prim)) in
  check_conforms "sec/sim" (S.all ~threads:16 ~ops:100 ())

(* A broken stack: pop ignores concurrent updates (plain store). The kit
   must catch it — on the simulator, where the race is schedulable. *)
module Broken (P : Sec_prim.Prim_intf.S) : Sec_spec.Stack_intf.S = struct
  module A = P.Atomic

  type 'a t = 'a list A.t

  let name = "BROKEN"
  let create ?max_threads:_ () = A.make []
  let push t ~tid:_ v = A.set t (v :: A.get t) (* racy read-modify-write *)

  let pop t ~tid:_ =
    match A.get t with
    | [] -> None
    | v :: rest ->
        A.set t rest;
        Some v

  let peek t ~tid:_ = match A.get t with [] -> None | v :: _ -> Some v
end

let test_broken_stack_flagged () =
  let module B = C.Make (Sim_runner) (Broken (Sec_sim.Sim.Prim)) in
  (* Drive enough concurrency that the lost-update race fires. *)
  let report = B.conservation ~threads:16 ~ops:200 () in
  Alcotest.(check bool) "broken stack detected" true
    (report.C.failures <> [])

let test_report_merge () =
  let a = { C.passed = 2; failures = [] } in
  let b = { C.passed = 1; failures = [ { C.check = "x"; detail = "y" } ] } in
  let m = C.merge a b in
  Alcotest.(check int) "passed summed" 3 m.C.passed;
  Alcotest.(check int) "failures kept" 1 (List.length m.C.failures)

let () =
  Alcotest.run "conformance"
    [
      ( "kit",
        [
          Alcotest.test_case "real stacks pass (native)" `Quick
            test_all_stacks_native;
          Alcotest.test_case "real stacks pass (simulated)" `Quick
            test_all_stacks_simulated;
          Alcotest.test_case "broken stack flagged" `Quick
            test_broken_stack_flagged;
          Alcotest.test_case "report merge" `Quick test_report_merge;
        ] );
    ]
