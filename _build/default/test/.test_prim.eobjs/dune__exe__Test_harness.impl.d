test/test_harness.ml: Alcotest Filename List QCheck QCheck_alcotest Sec_core Sec_harness Sec_prim Sec_sim Sys
