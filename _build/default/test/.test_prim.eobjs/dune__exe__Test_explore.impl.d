test/test_explore.ml: Alcotest Array List Sec_core Sec_sim Sec_spec Sec_stacks String
