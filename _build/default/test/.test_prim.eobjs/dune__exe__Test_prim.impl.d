test/test_prim.ml: Alcotest Array Atomic Domain Gc Int64 List Printf QCheck QCheck_alcotest Sec_prim
