test/test_stacks.ml: Alcotest Array Atomic Domain List QCheck QCheck_alcotest Sec_core Sec_prim Sec_stacks Testkit
