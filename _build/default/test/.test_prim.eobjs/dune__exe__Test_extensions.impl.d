test/test_extensions.ml: Alcotest Atomic Domain List QCheck QCheck_alcotest Sec_harness Sec_prim Sec_reclaim Sec_sim Sec_stacks Testkit
