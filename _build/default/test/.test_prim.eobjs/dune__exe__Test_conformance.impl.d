test/test_conformance.ml: Alcotest List Sec_core Sec_prim Sec_sim Sec_spec Sec_stacks
