test/test_sim.ml: Alcotest Array Effect Gen Int64 List Printf QCheck QCheck_alcotest Sec_core Sec_sim Sec_spec Sec_stacks
