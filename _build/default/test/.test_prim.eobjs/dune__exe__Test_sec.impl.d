test/test_sec.ml: Alcotest Array Domain Gen Int64 List Printf QCheck QCheck_alcotest Sec_core Sec_prim Sec_spec Testkit
