test/test_funnel.ml: Alcotest Array Domain Int64 List Printf Sec_funnel Sec_prim Sec_sim
