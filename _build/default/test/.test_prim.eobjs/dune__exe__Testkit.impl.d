test/testkit.ml: Alcotest Array Buffer Domain Format Int Int64 List Printf QCheck QCheck_alcotest Sec_prim Sec_spec Set
