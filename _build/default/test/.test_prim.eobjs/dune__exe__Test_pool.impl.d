test/test_pool.ml: Alcotest Array Domain Int Int64 List QCheck QCheck_alcotest Sec_core Sec_prim Sec_sim Set
