test/test_spec.ml: Alcotest Format Gen Int64 List QCheck QCheck_alcotest Sec_prim Sec_spec
