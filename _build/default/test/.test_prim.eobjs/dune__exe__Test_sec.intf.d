test/test_sec.mli:
