test/test_reclaim.ml: Alcotest Domain List Sec_prim Sec_reclaim Sec_sim Stdlib
