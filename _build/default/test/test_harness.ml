(* Tests for the benchmark harness: workload mixes, the algorithm
   registry, both runners, reporting, and the experiment registry. *)

module W = Sec_harness.Workload
module Registry = Sec_harness.Registry
module Measurement = Sec_harness.Measurement
module Native_runner = Sec_harness.Native_runner
module Sim_runner = Sec_harness.Sim_runner
module Report = Sec_harness.Report
module Experiments = Sec_harness.Experiments

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)

let test_workload_presets () =
  List.iter
    (fun m ->
      Alcotest.(check int)
        (m.W.label ^ " sums to 100")
        100
        (m.W.push_pct + m.W.pop_pct + m.W.peek_pct))
    W.all;
  Alcotest.(check string) "lookup by label" "50%upd" (W.by_name "50%upd").W.label;
  Alcotest.check_raises "unknown workload"
    (Invalid_argument "unknown workload: nope") (fun () ->
      ignore (W.by_name "nope"))

let test_workload_pick_boundaries () =
  let m = W.update_heavy in
  Alcotest.(check bool) "0 is push" true (W.pick m 0 = W.Push);
  Alcotest.(check bool) "49 is push" true (W.pick m 49 = W.Push);
  Alcotest.(check bool) "50 is pop" true (W.pick m 50 = W.Pop);
  Alcotest.(check bool) "99 is pop" true (W.pick m 99 = W.Pop);
  let r = W.read_heavy in
  Alcotest.(check bool) "read-heavy 10 is peek" true (W.pick r 10 = W.Peek);
  Alcotest.(check bool) "read-heavy 99 is peek" true (W.pick r 99 = W.Peek)

let qcheck_workload_distribution =
  QCheck.Test.make ~name:"pick follows the declared percentages" ~count:20
    QCheck.(int_range 0 3)
    (fun which ->
      let m = List.nth W.all which in
      let rng = Sec_prim.Rng.create 7L in
      let push = ref 0 and pop = ref 0 and peek = ref 0 in
      let n = 20_000 in
      for _ = 1 to n do
        match W.pick m (Sec_prim.Rng.int rng 100) with
        | W.Push -> incr push
        | W.Pop -> incr pop
        | W.Peek -> incr peek
      done;
      let close pct count = abs ((pct * n / 100) - count) < n / 20 in
      close m.W.push_pct !push && close m.W.pop_pct !pop
      && close m.W.peek_pct !peek)

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let test_registry_names () =
  Alcotest.(check (list string))
    "paper set order"
    [ "SEC"; "TRB"; "EB"; "FC"; "CC"; "TSI" ]
    (List.map (fun e -> e.Registry.name) Registry.paper_set);
  Alcotest.(check string) "find TSI" "TSI" (Registry.find "TSI").Registry.name;
  Alcotest.(check string) "find SEC_Agg3" "SEC_Agg3"
    (Registry.find "SEC_Agg3").Registry.name;
  Alcotest.check_raises "unknown algorithm"
    (Invalid_argument "unknown algorithm: XYZ") (fun () ->
      ignore (Registry.find "XYZ"))

let test_registry_entries_work () =
  (* Every registered maker must yield a working stack on both substrates. *)
  List.iter
    (fun (e : Registry.entry) ->
      let module Maker = (val e.Registry.maker) in
      let module S = Maker (Sec_prim.Native) in
      let s = S.create ~max_threads:2 () in
      S.push s ~tid:0 7;
      Alcotest.(check (option int)) (e.Registry.name ^ " native pop") (Some 7)
        (S.pop s ~tid:0))
    (Registry.all @ Registry.sec_aggregator_sweep)

let test_registry_sec_config () =
  let e = Registry.sec_with ~freeze_backoff:0 ~aggregators:4 ~label:"X" () in
  let module Maker = (val e.Registry.maker) in
  let module S = Maker (Sec_prim.Native) in
  Alcotest.(check string) "label" "X" S.name

(* ------------------------------------------------------------------ *)
(* Runners                                                              *)

let test_native_runner_smoke () =
  let m =
    Native_runner.run Registry.treiber.Registry.maker ~threads:2 ~duration:0.05
      ~mix:W.update_heavy ()
  in
  Alcotest.(check string) "algorithm" "TRB" m.Measurement.algorithm;
  Alcotest.(check int) "threads" 2 m.Measurement.threads;
  Alcotest.(check bool) "did work" true (m.Measurement.ops > 0);
  Alcotest.(check bool) "throughput positive" true (m.Measurement.mops > 0.)

let test_sim_runner_smoke () =
  let m =
    Sim_runner.run Registry.sec.Registry.maker
      ~topology:Sec_sim.Topology.testbox ~threads:8 ~duration_cycles:30_000
      ~mix:W.mixed ()
  in
  Alcotest.(check string) "algorithm" "SEC" m.Measurement.algorithm;
  Alcotest.(check bool) "did work" true (m.Measurement.ops > 0)

let test_sim_runner_deterministic () =
  let run () =
    Sim_runner.run Registry.treiber.Registry.maker
      ~topology:Sec_sim.Topology.testbox ~threads:4 ~duration_cycles:20_000
      ~mix:W.update_heavy ~seed:5 ()
  in
  Alcotest.(check int) "same seed, same ops" (run ()).Measurement.ops
    (run ()).Measurement.ops

let test_sim_runner_sec_stats () =
  let stats =
    Sim_runner.run_sec_stats ~config:Sec_core.Config.default
      ~topology:Sec_sim.Topology.testbox ~threads:8 ~duration_cycles:50_000
      ~mix:W.update_heavy ()
  in
  let module St = Sec_core.Sec_stats in
  Alcotest.(check bool) "batches formed" true (stats.St.batches > 0);
  Alcotest.(check int) "accounting holds" stats.St.operations
    (stats.St.eliminated + stats.St.combined);
  (* The prefill (one single-op batch per push) must have been excluded:
     with 8 symmetric threads the average batch exceeds 1 op. *)
  Alcotest.(check bool) "prefill excluded from degree" true
    (St.batching_degree stats > 1.05)

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)

let test_measurement_scaling () =
  let native =
    Measurement.of_native ~algorithm:"x" ~threads:1 ~ops:2_000_000 ~elapsed:1.0
  in
  Alcotest.(check (float 1e-6)) "native mops" 2.0 native.Measurement.mops;
  let sim =
    Measurement.of_simulated ~algorithm:"x" ~threads:1 ~ops:3_000 ~cycles:3_000
  in
  (* 3000 ops in 3000 cycles at 3 GHz = 3000 Mops/s. *)
  Alcotest.(check (float 1e-3)) "simulated mops" 3_000. sim.Measurement.mops

let test_csv_roundtrip () =
  let dir = Filename.temp_file "sec" "" in
  Sys.remove dir;
  Report.csv ~dir ~file:"t.csv" ~header:[ "a"; "b" ]
    ~rows:[ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in (Filename.concat dir "t.csv") in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Alcotest.(check (list string)) "content" [ "a,b"; "1,2"; "3,4" ] lines

(* ------------------------------------------------------------------ *)
(* Experiment registry                                                  *)

let test_experiment_ids () =
  let ids = Experiments.ids () in
  List.iter
    (fun id ->
      if not (List.mem id ids) then Alcotest.failf "missing experiment %s" id)
    [
      "fig2"; "fig3"; "fig4"; "table1"; "fig5"; "fig6"; "fig7"; "fig8";
      "table2"; "fig9"; "fig10"; "fig11"; "fig12"; "table3";
      "ablation-backoff"; "ablation-funnel";
    ];
  Alcotest.(check bool) "find works" true (Experiments.find "fig2" <> None);
  Alcotest.(check bool) "unknown is None" true (Experiments.find "nope" = None)

let test_experiment_thread_lists () =
  let top = Experiments.threads_for Sec_sim.Topology.emerald in
  Alcotest.(check int) "emerald sweep tops out at 56" 56
    (List.fold_left max 0 top);
  let sap = Experiments.threads_for Sec_sim.Topology.sapphire in
  Alcotest.(check int) "sapphire sweep tops out at 192" 192
    (List.fold_left max 0 sap)

let test_experiment_duration_scaling () =
  let base = Experiments.duration_cycles Experiments.default_opts in
  let half =
    Experiments.duration_cycles
      { Experiments.default_opts with Experiments.scale = 0.5 }
  in
  Alcotest.(check bool) "scale halves duration" true
    (abs ((base / 2) - half) <= 1);
  let tiny =
    Experiments.duration_cycles
      { Experiments.default_opts with Experiments.scale = 0.000001 }
  in
  Alcotest.(check bool) "duration floored" true (tiny >= 10_000)

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "presets" `Quick test_workload_presets;
          Alcotest.test_case "pick boundaries" `Quick
            test_workload_pick_boundaries;
          QCheck_alcotest.to_alcotest qcheck_workload_distribution;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "entries work" `Quick test_registry_entries_work;
          Alcotest.test_case "sec config" `Quick test_registry_sec_config;
        ] );
      ( "runners",
        [
          Alcotest.test_case "native smoke" `Quick test_native_runner_smoke;
          Alcotest.test_case "sim smoke" `Quick test_sim_runner_smoke;
          Alcotest.test_case "sim deterministic" `Quick
            test_sim_runner_deterministic;
          Alcotest.test_case "sec stats run" `Quick test_sim_runner_sec_stats;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "measurement scaling" `Quick
            test_measurement_scaling;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "ids" `Quick test_experiment_ids;
          Alcotest.test_case "thread lists" `Quick test_experiment_thread_lists;
          Alcotest.test_case "duration scaling" `Quick
            test_experiment_duration_scaling;
        ] );
    ]
