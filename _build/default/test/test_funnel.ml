(* Tests for the aggregating-funnel fetch&add: the returned ranges must be
   disjoint and exactly cover the counter's movement — under real domains
   and in the simulator at high fiber counts. *)

module P = Sec_prim.Native
module Faa = Sec_funnel.Agg_faa.Make (P)
module SimFaa = Sec_funnel.Agg_faa.Make (Sec_sim.Sim.Prim)

let test_sequential_unit_adds () =
  let f = Faa.create ~shards:1 ~close_backoff:0 () in
  for i = 0 to 99 do
    Alcotest.(check int) "dense sequence" i (Faa.fetch_and_add f ~tid:0 1)
  done;
  Alcotest.(check int) "final value" 100 (Faa.get f)

let test_sequential_mixed_adds () =
  let f = Faa.create ~shards:2 ~close_backoff:0 ~init:10 () in
  Alcotest.(check int) "starts at init" 10 (Faa.fetch_and_add f ~tid:0 5);
  Alcotest.(check int) "next base" 15 (Faa.fetch_and_add f ~tid:1 3);
  Alcotest.(check int) "value" 18 (Faa.get f)

let test_rejects_nonpositive () =
  let f = Faa.create () in
  Alcotest.check_raises "zero addend"
    (Invalid_argument "Agg_faa.fetch_and_add: addend must be positive")
    (fun () -> ignore (Faa.fetch_and_add f ~tid:0 0))

let check_ranges ~total_expected ranges =
  (* Each (base, n) claims [base, base+n); together they must tile
     [0, total) with no overlap. *)
  let sorted = List.sort compare ranges in
  let rec walk expected = function
    | [] -> expected
    | (base, n) :: rest ->
        if base <> expected then
          Alcotest.failf "range gap/overlap: expected base %d, got %d" expected
            base;
        walk (base + n) rest
  in
  let final = walk 0 sorted in
  Alcotest.(check int) "ranges tile the counter" total_expected final

let test_concurrent_distinct_ranges () =
  let threads = 4 and per_thread = 2_000 in
  let f = Faa.create ~shards:2 () in
  let results = Array.make threads [] in
  let body tid () =
    let rng = Sec_prim.Rng.create (Int64.of_int (tid + 40)) in
    for _ = 1 to per_thread do
      let n = 1 + Sec_prim.Rng.int rng 3 in
      let base = Faa.fetch_and_add f ~tid n in
      results.(tid) <- (base, n) :: results.(tid)
    done
  in
  let ds = List.init (threads - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  let ranges = Array.to_list results |> List.concat in
  check_ranges ~total_expected:(Faa.get f) ranges;
  Alcotest.(check bool) "batching happened (fewer batches than ops)" true
    (Faa.batches_closed f <= threads * per_thread)

let test_simulated_at_40_fibers () =
  let fibers = 40 and per_fiber = 50 in
  let (ranges, final), _ =
    Sec_sim.Sim.run ~topology:Sec_sim.Topology.emerald (fun () ->
        let f = SimFaa.create ~shards:4 () in
        let results = Array.make fibers [] in
        for _ = 1 to fibers do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              for _ = 1 to per_fiber do
                let n = 1 + Sec_sim.Sim.Prim.rand_int 3 in
                let base = SimFaa.fetch_and_add f ~tid n in
                results.(tid) <- (base, n) :: results.(tid)
              done)
        done;
        Sec_sim.Sim.await_all ();
        (Array.to_list results |> List.concat, SimFaa.get f))
  in
  check_ranges ~total_expected:final ranges

let test_central_traffic_reduction () =
  (* The whole point of the funnel: far fewer central-counter RMWs than
     operations. Measure via the simulator's event-free proxy: batches. *)
  let batches, ops =
    let (b, o), _ =
      Sec_sim.Sim.run ~topology:Sec_sim.Topology.emerald (fun () ->
          let f = SimFaa.create ~shards:2 ~close_backoff:256 () in
          let n = 24 and per = 100 in
          for _ = 1 to n do
            Sec_sim.Sim.spawn (fun () ->
                let tid = Sec_sim.Sim.fiber_id () in
                for _ = 1 to per do
                  ignore (SimFaa.fetch_and_add f ~tid 1)
                done)
          done;
          Sec_sim.Sim.await_all ();
          (SimFaa.batches_closed f, n * per))
    in
    (b, o)
  in
  Alcotest.(check bool)
    (Printf.sprintf "aggregation: %d batches for %d ops" batches ops)
    true
    (batches * 2 < ops)

let () =
  Alcotest.run "funnel"
    [
      ( "sequential",
        [
          Alcotest.test_case "unit adds" `Quick test_sequential_unit_adds;
          Alcotest.test_case "mixed adds" `Quick test_sequential_mixed_adds;
          Alcotest.test_case "rejects non-positive" `Quick
            test_rejects_nonpositive;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "distinct ranges (domains)" `Quick
            test_concurrent_distinct_ranges;
          Alcotest.test_case "distinct ranges (40 fibers)" `Quick
            test_simulated_at_40_fibers;
          Alcotest.test_case "central traffic reduction" `Quick
            test_central_traffic_reduction;
        ] );
    ]
