(* Tests for epoch-based reclamation: the central safety property is that
   no destructor runs while any thread is still inside a critical section
   it entered before the retirement. *)

module P = Sec_prim.Native
module Ebr = Sec_reclaim.Ebr.Make (P)
module SimEbr = Sec_reclaim.Ebr.Make (Sec_sim.Sim.Prim)

let test_retire_and_flush () =
  let e = Ebr.create ~max_threads:2 () in
  let freed = ref 0 in
  Ebr.retire e ~tid:0 (fun () -> incr freed);
  Ebr.retire e ~tid:0 (fun () -> incr freed);
  Alcotest.(check int) "nothing freed yet" 0 !freed;
  Ebr.flush e ~tid:0;
  Alcotest.(check int) "freed after flush" 2 !freed;
  let s = Ebr.stats e in
  Alcotest.(check int) "stats retired" 2 s.Ebr.retired;
  Alcotest.(check int) "stats reclaimed" 2 s.Ebr.reclaimed;
  Alcotest.(check int) "stats pending" 0 s.Ebr.pending

let test_epoch_advances () =
  let e = Ebr.create ~max_threads:2 () in
  let e0 = Ebr.epoch e in
  Ebr.try_advance e;
  Alcotest.(check int) "quiescent world advances" (e0 + 1) (Ebr.epoch e)

let test_active_reader_blocks_advance () =
  let e = Ebr.create ~max_threads:2 () in
  Ebr.enter e ~tid:1;
  Ebr.try_advance e;
  let e1 = Ebr.epoch e in
  Ebr.try_advance e;
  Alcotest.(check int) "active reader pins the epoch" e1 (Ebr.epoch e);
  Ebr.exit e ~tid:1;
  Ebr.try_advance e;
  Alcotest.(check int) "released after exit" (e1 + 1) (Ebr.epoch e)

let test_no_premature_destruction () =
  (* Thread 1 sits in a critical section; objects retired meanwhile must
     not be destroyed until it leaves, no matter how hard we flush. *)
  let e = Ebr.create ~max_threads:2 () in
  let destroyed = ref false in
  Ebr.enter e ~tid:1;
  Ebr.retire e ~tid:0 (fun () -> destroyed := true);
  for _ = 1 to 10 do
    Ebr.flush e ~tid:0
  done;
  Alcotest.(check bool) "protected while reader active" false !destroyed;
  Ebr.exit e ~tid:1;
  Ebr.flush e ~tid:0;
  Alcotest.(check bool) "destroyed after reader exits" true !destroyed

let test_guard_exception_safety () =
  let e = Ebr.create ~max_threads:1 () in
  (try Ebr.guard e ~tid:0 (fun () -> failwith "boom") with Failure _ -> ());
  Ebr.try_advance e;
  let e0 = Ebr.epoch e in
  Ebr.try_advance e;
  Alcotest.(check bool) "slot released despite exception" true
    (Ebr.epoch e > e0 - 1)

(* A realistic integration: a Treiber-like structure where popped nodes
   hold a "resource" released via EBR. Concurrent readers traverse under
   guard; the resource must never be observed released during traversal. *)
let test_concurrent_no_use_after_free () =
  let threads = 4 in
  let e = Ebr.create ~max_threads:threads () in
  let module A = Stdlib.Atomic in
  (* Shared cell holding a "node": (payload, live flag). Writers swap in a
     fresh node and retire the old one; readers guard, read, and check
     liveness twice with work in between. *)
  let make_node v = (v, A.make true) in
  let cell = A.make (make_node 0) in
  let violations = A.make 0 in
  let stop = A.make false in
  let writer tid () =
    for i = 1 to 3_000 do
      let fresh = make_node i in
      let old = A.exchange cell fresh in
      let _, live = old in
      Ebr.retire e ~tid (fun () -> A.set live false)
    done;
    A.set stop true
  in
  let reader tid () =
    while not (A.get stop) do
      Ebr.guard e ~tid (fun () ->
          let _, live = A.get cell in
          if not (A.get live) then A.incr violations;
          P.relax 50;
          if not (A.get live) then A.incr violations)
    done
  in
  let ds =
    Domain.spawn (writer 0)
    :: List.init (threads - 1) (fun i -> Domain.spawn (reader (i + 1)))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no reader saw a freed node" 0 (A.get violations);
  Ebr.flush e ~tid:0;
  let s = Ebr.stats e in
  Alcotest.(check int) "all retirements recorded" 3_000 s.Ebr.retired

let test_sweep_threshold_amortisation () =
  (* With threshold 4, reclamation happens without explicit flushes. *)
  let e = Ebr.create ~max_threads:1 ~sweep_threshold:4 () in
  let freed = ref 0 in
  for _ = 1 to 100 do
    Ebr.retire e ~tid:0 (fun () -> incr freed)
  done;
  Alcotest.(check bool) "amortised sweeping reclaimed most" true (!freed > 50)

let test_ebr_under_simulation () =
  (* Deterministic high-thread-count run in the simulator. *)
  let reclaimed, _ =
    Sec_sim.Sim.run ~topology:Sec_sim.Topology.testbox (fun () ->
        let e = SimEbr.create ~max_threads:8 ~sweep_threshold:4 () in
        let freed = Sec_sim.Sim.Prim.Atomic.make 0 in
        for _ = 1 to 8 do
          Sec_sim.Sim.spawn (fun () ->
              let tid = Sec_sim.Sim.fiber_id () in
              for _ = 1 to 100 do
                SimEbr.guard e ~tid (fun () -> Sec_sim.Sim.Prim.relax 5);
                SimEbr.retire e ~tid (fun () ->
                    Sec_sim.Sim.Prim.Atomic.incr freed)
              done)
        done;
        Sec_sim.Sim.await_all ();
        for tid = 0 to 7 do
          SimEbr.flush e ~tid
        done;
        Sec_sim.Sim.Prim.Atomic.get freed)
  in
  Alcotest.(check int) "all retired objects reclaimed" 800 reclaimed

let () =
  Alcotest.run "reclaim"
    [
      ( "epochs",
        [
          Alcotest.test_case "retire & flush" `Quick test_retire_and_flush;
          Alcotest.test_case "advance" `Quick test_epoch_advances;
          Alcotest.test_case "reader blocks advance" `Quick
            test_active_reader_blocks_advance;
          Alcotest.test_case "guard exception safety" `Quick
            test_guard_exception_safety;
        ] );
      ( "safety",
        [
          Alcotest.test_case "no premature destruction" `Quick
            test_no_premature_destruction;
          Alcotest.test_case "concurrent use-after-free hunt" `Quick
            test_concurrent_no_use_after_free;
          Alcotest.test_case "amortised sweeping" `Quick
            test_sweep_threshold_amortisation;
        ] );
      ( "simulated",
        [ Alcotest.test_case "8 fibers" `Quick test_ebr_under_simulation ] );
    ]
